//! Model checks for the seqlock protocol (`dcache-core/src/seqlock.rs`)
//! and for the dentry snapshot discipline it anchors: mutate →
//! republish → bump-seq (DESIGN.md §9).
//!
//! Each test explores thousands of thread interleavings of the *real*
//! workspace code under the deterministic scheduler. The `injected_*`
//! tests break the protocol on purpose and require the checker to find
//! a counterexample schedule — and to reproduce it exactly from the
//! reported seed.

use dcache_core::model;
use dcache_core::{SeqCell, SeqCount};
use dst::sync::atomic::{AtomicU64, Ordering};
use dst::sync::Arc;

const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Two words kept in the invariant relation `b == a * K`, published
/// through a bare [`SeqCount`]. The `guarded` flag lets tests omit the
/// write_begin/write_end bracket — the injected protocol violation.
struct Pair {
    seq: SeqCount,
    a: AtomicU64,
    b: AtomicU64,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            seq: SeqCount::new(),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }

    fn write(&self, v: u64, guarded: bool) {
        if guarded {
            self.seq.write_begin();
        }
        self.a.store(v, Ordering::Release);
        self.b.store(v.wrapping_mul(K), Ordering::Release);
        if guarded {
            self.seq.write_end();
        }
    }

    fn read(&self) -> (u64, u64) {
        loop {
            let s = self.seq.read_begin();
            let a = self.a.load(Ordering::Acquire);
            let b = self.b.load(Ordering::Acquire);
            if !self.seq.read_retry(s) {
                return (a, b);
            }
        }
    }
}

#[test]
fn seqcount_readers_never_observe_mid_mutation_state() {
    dst::check(
        "seqcount-multiword",
        dst::Config::default()
            .iterations(6000)
            .seed(0x51)
            .from_env(),
        || {
            let p = Arc::new(Pair::new());
            let writer = {
                let p = p.clone();
                dst::thread::spawn(move || {
                    p.write(1, true);
                    p.write(2, true);
                })
            };
            for _ in 0..2 {
                let (a, b) = p.read();
                assert_eq!(
                    b,
                    a.wrapping_mul(K),
                    "seqlock reader observed a mid-mutation snapshot: a={a}"
                );
            }
            writer.join().unwrap();
        },
    );
}

#[test]
fn seqcell_reads_are_atomic() {
    dst::check(
        "seqcell-atomic",
        dst::Config::default()
            .iterations(4000)
            .seed(0x52)
            .from_env(),
        || {
            let c = Arc::new(SeqCell::new((0u64, 0u64)));
            let writer = {
                let c = c.clone();
                dst::thread::spawn(move || {
                    c.write((1, K));
                    c.write((2, 2u64.wrapping_mul(K)));
                })
            };
            let reader = {
                let c = c.clone();
                dst::thread::spawn(move || {
                    let (a, b) = c.read();
                    assert_eq!(b, a.wrapping_mul(K), "torn SeqCell read: a={a}");
                })
            };
            let (a, b) = c.read();
            assert_eq!(b, a.wrapping_mul(K), "torn SeqCell read: a={a}");
            writer.join().unwrap();
            reader.join().unwrap();
        },
    );
}

#[test]
fn injected_unguarded_write_is_caught_and_replays() {
    // The writer mutates both words WITHOUT the write_begin/write_end
    // bracket: the classic forgotten-seqlock bug. The checker must find
    // a schedule where the reader validates a torn snapshot, and the
    // reported seed must reproduce that exact schedule.
    let body = || {
        let p = Arc::new(Pair::new());
        let writer = {
            let p = p.clone();
            dst::thread::spawn(move || p.write(1, false))
        };
        let (a, b) = p.read();
        assert_eq!(
            b,
            a.wrapping_mul(K),
            "mid-mutation snapshot survived validation"
        );
        writer.join().unwrap();
    };
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x53), body);
    let failure = report
        .failure
        .expect("the checker must catch the unguarded write");
    assert!(
        failure.message.contains("mid-mutation snapshot"),
        "unexpected failure: {}",
        failure.message
    );
    // Seed replay and exact-trace replay both reproduce the violation.
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("mid-mutation snapshot"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(msg.contains("mid-mutation snapshot"));
}

#[test]
fn dentry_rename_republishes_before_seq_bump() {
    // The documented discipline (dentry.rs::republish): mutate and
    // republish the snapshot BEFORE bumping seq, so a reader that
    // samples a post-bump seq is guaranteed the post-mutation snapshot.
    dst::check(
        "dentry-republish-order",
        dst::Config::default()
            .iterations(3000)
            .seed(0x54)
            .from_env(),
        || {
            let d = model::dentry(1, "old");
            let writer = {
                let d = d.clone();
                dst::thread::spawn(move || {
                    model::rename(&d, "new");
                    d.bump_seq();
                })
            };
            let s = d.seq();
            let name = d.name();
            if s >= 1 {
                // Bump observed ⟹ republish completed first ⟹ the
                // snapshot read after the sample must be post-rename.
                assert_eq!(
                    &*name, "new",
                    "post-bump reader observed the pre-rename snapshot"
                );
            }
            writer.join().unwrap();
        },
    );
}

#[test]
fn injected_bump_before_republish_is_caught_and_replays() {
    // Inverted discipline: seq bumps first, snapshot republishes after.
    // A reader sampling the bumped seq can now observe stale data while
    // believing it is post-mutation — the bug class the ordering rule
    // exists to prevent.
    let body = || {
        let d = model::dentry(1, "old");
        let writer = {
            let d = d.clone();
            dst::thread::spawn(move || {
                d.bump_seq();
                model::rename(&d, "new");
            })
        };
        let s = d.seq();
        let name = d.name();
        if s >= 1 {
            assert_eq!(
                &*name, "new",
                "post-bump reader observed the pre-rename snapshot"
            );
        }
        writer.join().unwrap();
    };
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x55), body);
    let failure = report
        .failure
        .expect("the checker must catch the inverted republish/bump order");
    assert!(
        failure.message.contains("pre-rename snapshot"),
        "unexpected failure: {}",
        failure.message
    );
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("pre-rename snapshot"));
}
