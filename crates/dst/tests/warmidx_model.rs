//! Model check for the warm-index checkpoint ordering contract
//! (`dc-fs/src/memfs/warmidx.rs` + `MemFs::warm_checkpoint`,
//! DESIGN.md §15).
//!
//! The warm index persists `bound_seq`, the journal transaction it
//! claims everything it references is durable up to. Rehydration trusts
//! an index only when `bound_seq ≤` the recovered journal tail, so the
//! safety of the whole scheme rests on one ordering discipline inside
//! `warm_checkpoint`: **journal-checkpoint the log to sequence S (tail
//! durable), then write the index bound to S** — all under the big-op
//! lock, so no transaction commits in between and S can never exceed the
//! durable tail. A power cut observes the device at an arbitrary point,
//! so at every instant the durable image must satisfy
//! `index.bound_seq ≤ durable_tail`.
//!
//! The model keeps the two durable regions as one atomic word each and
//! runs the protocol under the deterministic scheduler with a concurrent
//! crash observer. The `injected_*` test reverses the arc (index written
//! before the journal checkpoint — the bug skipping the checkpoint, or
//! binding to `next_seq` instead of the durable tail, would cause): the
//! checker must find a schedule where a cut leaves an index referencing
//! a transaction the recovered journal never reached, and must reproduce
//! it from the reported seed and trace.

use dst::sync::atomic::{AtomicU64, Ordering};
use dst::sync::Arc;

/// The durable device image, one word per region. Each store models one
/// flush completing — the only granularity a power cut can split.
struct Device {
    /// Highest journal sequence that is durably checkpointed (the tail
    /// recovery reconstructs: commit records + in-place state).
    durable_tail: AtomicU64,
    /// `bound_seq` of the newest durable warm-index generation (0 when
    /// no index has been written).
    index_bound: AtomicU64,
}

impl Device {
    fn new() -> Device {
        Device {
            durable_tail: AtomicU64::new(0),
            index_bound: AtomicU64::new(0),
        }
    }

    /// One `warm_checkpoint` at journal sequence `s`. `checkpoint_first`
    /// is the real protocol; the injected bug writes the index before
    /// the journal tail is durable at `s`.
    fn warm_checkpoint(&self, s: u64, checkpoint_first: bool) {
        if checkpoint_first {
            self.durable_tail.store(s, Ordering::Release);
            self.index_bound.store(s, Ordering::Release);
        } else {
            // BUG: the index flush overtakes the journal checkpoint —
            // what binding to `next_seq`, or dropping the big-op lock
            // between the two flushes, permits.
            self.index_bound.store(s, Ordering::Release);
            self.durable_tail.store(s, Ordering::Release);
        }
    }

    /// What mount-time rehydration would find after a cut here. Reads
    /// run index-first, mirroring the real order (recovery replays the
    /// journal before `read_warm_index` compares `bound_seq` to it), so
    /// a racing tail advance can only make the observation safer.
    fn observe(&self) -> (u64, u64) {
        let bound = self.index_bound.load(Ordering::Acquire);
        let tail = self.durable_tail.load(Ordering::Acquire);
        (bound, tail)
    }
}

fn check_crash_point(d: &Device) {
    let (bound, tail) = d.observe();
    assert!(
        bound <= tail,
        "warm index bound to txn {bound} but the durable journal tail is {tail}: \
         a cut here leaves an index referencing a future the disk never reached"
    );
}

#[test]
fn index_never_references_past_the_durable_tail() {
    dst::check(
        "warmidx-bound-order",
        dst::Config::default()
            .iterations(6000)
            .seed(0x3A91)
            .from_env(),
        || {
            let d = Arc::new(Device::new());
            let writer = {
                let d = d.clone();
                dst::thread::spawn(move || {
                    // Two successive checkpoints at advancing sequences
                    // (generations alternate halves on disk; the bound
                    // ordering contract is identical for both).
                    d.warm_checkpoint(3, true);
                    d.warm_checkpoint(7, true);
                })
            };
            // The crash observer: every interleaving point is a
            // possible power cut.
            for _ in 0..3 {
                check_crash_point(&d);
            }
            writer.join().unwrap();
            check_crash_point(&d);
            assert_eq!(d.observe(), (7, 7));
        },
    );
}

#[test]
fn injected_index_before_checkpoint_is_caught_and_replays() {
    let body = || {
        let d = Arc::new(Device::new());
        let writer = {
            let d = d.clone();
            dst::thread::spawn(move || d.warm_checkpoint(5, false))
        };
        for _ in 0..2 {
            check_crash_point(&d);
        }
        writer.join().unwrap();
    };
    let report = dst::explore(dst::Config::default().iterations(4000).seed(0x3A92), body);
    let failure = report
        .failure
        .expect("the checker must catch index-before-checkpoint");
    assert!(
        failure.message.contains("future the disk never reached"),
        "unexpected failure: {}",
        failure.message
    );
    // Seed replay and exact-trace replay both reproduce the violation.
    let msg = dst::replay(failure.seed, failure.policy, body).expect("seed must reproduce");
    assert!(msg.contains("future the disk never reached"));
    let msg = dst::replay_trace(failure.trace.clone(), body).expect("trace must reproduce");
    assert!(msg.contains("future the disk never reached"));
}
