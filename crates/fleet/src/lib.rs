//! A seeded, deterministic multi-tenant fleet simulator (DESIGN.md §14).
//!
//! One kernel hosts a fleet of tenants. Each tenant is a mount namespace
//! (`unshare(CLONE_NEWNS)` over a shared superblock, so tenant trees
//! overlap in the global dentry forest) plus a set of credentials, and
//! belongs to one of three traffic classes:
//!
//! - **hot-web**: skewed stats over a small private hot set plus a slice
//!   of the shared tree, 90% of ops under one hot credential — the
//!   steady resident tenant the caches should serve almost entirely.
//! - **cold-batch**: periodic sequential scans over a larger private
//!   tree, rotating uniformly through its credentials — warm once per
//!   round, cold in between.
//! - **churn-ci**: creates a scratch tree, stats it, deletes it, and
//!   tears its whole namespace down (`Kernel::destroy_namespace`) every
//!   round — the tenant whose lifecycle cost must stay O(tenant).
//!
//! The fleet runs inside a fixed memory budget: after every round the
//! driver applies [`Kernel::memory_pressure`], and the per-tenant DLHT
//! sizing ([`DcacheConfig::dlht_tenant_buckets`]) and the resident-PCC
//! cap ([`DcacheConfig::pcc_max_resident`]) keep the fixed overheads
//! proportional to *active* tenants, not fleet size.
//!
//! Everything is single-threaded and splitmix64-seeded, so per-class
//! counter attribution (stat deltas around each tenant's batch) is exact
//! and a seed reproduces a run bit-for-bit.

use dc_cred::Cred;
use dc_obs::{LatencyHist, MetricSource};
use dc_vfs::{Kernel, KernelBuilder, MountNamespace, OpenFlags, Process, TeardownReport};
use dcache_core::DcacheConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// splitmix64 — the repo-wide seeding discipline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Skewed pick: 90% of draws land in the hot first 10%.
    fn skewed(&mut self, n: usize) -> usize {
        let r = self.next();
        if r % 10 < 9 {
            (r >> 8) as usize % (n / 10).max(1)
        } else {
            (r >> 8) as usize % n
        }
    }
}

/// Tenant traffic classes, assigned round-robin by tenant index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// Skewed reads over a small hot set; one hot credential.
    HotWeb,
    /// Periodic sequential scans; uniform credential rotation.
    ColdBatch,
    /// Create → stat → delete → namespace teardown, every round.
    ChurnCi,
}

impl TenantClass {
    /// All classes, in reporting order.
    pub fn all() -> [TenantClass; 3] {
        [
            TenantClass::HotWeb,
            TenantClass::ColdBatch,
            TenantClass::ChurnCi,
        ]
    }

    /// Stable snake_case key (tables, JSON, metric labels).
    pub fn key(self) -> &'static str {
        match self {
            TenantClass::HotWeb => "hot_web",
            TenantClass::ColdBatch => "cold_batch",
            TenantClass::ChurnCi => "churn_ci",
        }
    }

    /// Class of tenant `idx` (round-robin).
    pub fn of(idx: usize) -> TenantClass {
        Self::all()[idx % 3]
    }

    fn idx(self) -> usize {
        match self {
            TenantClass::HotWeb => 0,
            TenantClass::ColdBatch => 1,
            TenantClass::ChurnCi => 2,
        }
    }
}

/// Fleet shape and budget.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Run seed (drives every random choice).
    pub seed: u64,
    /// Tenant count — each is one mount namespace.
    pub tenants: usize,
    /// Credentials per tenant.
    pub creds_per_tenant: usize,
    /// Files in each tenant's private tree.
    pub files_per_tenant: usize,
    /// Files in the shared tree every tenant also reads.
    pub shared_files: usize,
    /// Churn rounds over the whole fleet.
    pub rounds: usize,
    /// Lookup ops per tenant per round.
    pub ops_per_tenant: usize,
    /// Fleet-wide reclaimable-footprint budget, bytes (enforced through
    /// the shrinker after every round).
    pub mem_budget_bytes: u64,
    /// Resident-PCC cap (see [`DcacheConfig::pcc_max_resident`]).
    pub pcc_max_resident: usize,
    /// Per-credential PCC size, bytes (fleets size PCCs down from the
    /// single-tenant 64 KB default).
    pub pcc_bytes: usize,
    /// DLHT buckets per *tenant* namespace (power of two ≤ 2^16).
    pub tenant_buckets: usize,
    /// Record a latency sample every N ops (1 = every op).
    pub sample_every: usize,
}

impl FleetConfig {
    /// CI scale: still 1000+ namespaces and 10k+ creds (the acceptance
    /// floor), with rounds and per-tenant ops trimmed to seconds.
    pub fn quick(seed: u64) -> FleetConfig {
        FleetConfig {
            seed,
            tenants: 1024,
            creds_per_tenant: 10,
            files_per_tenant: 12,
            shared_files: 64,
            rounds: 3,
            ops_per_tenant: 32,
            mem_budget_bytes: 192 << 20,
            pcc_max_resident: 1024,
            pcc_bytes: 8 * 1024,
            tenant_buckets: 1 << 8,
            sample_every: 4,
        }
    }

    /// Paper-comparable scale: a bigger fleet, longer churn.
    pub fn full(seed: u64) -> FleetConfig {
        FleetConfig {
            tenants: 1536,
            creds_per_tenant: 12,
            files_per_tenant: 24,
            rounds: 6,
            ops_per_tenant: 96,
            ..FleetConfig::quick(seed)
        }
    }

    /// The dcache configuration this fleet provisions: every paper
    /// optimization, plus the tenancy knobs (sharded tenant DLHTs, the
    /// resident-PCC cap, fleet-sized PCCs, and the memory budget).
    pub fn dcache(&self) -> DcacheConfig {
        let mut cfg = DcacheConfig::optimized()
            .with_tenant_buckets(self.tenant_buckets)
            .with_pcc_max_resident(self.pcc_max_resident)
            .with_mem_budget(self.mem_budget_bytes as usize);
        cfg.pcc_bytes = self.pcc_bytes;
        cfg
    }
}

/// Per-class tally, exported as labeled metrics and in [`FleetReport`].
#[derive(Debug)]
pub struct ClassTally {
    /// The class this tally covers.
    pub class: TenantClass,
    /// Tenants in the class.
    pub tenants: usize,
    /// Lookup ops issued.
    pub ops: u64,
    /// `stats.lookups` delta attributed to this class.
    pub lookups: u64,
    /// `stats.miss_fs` delta attributed to this class.
    pub miss_fs: u64,
    /// Sampled per-op latency.
    pub hist: LatencyHist,
    /// Namespace teardowns executed by this class's tenants.
    pub teardowns: u64,
    /// Wall-clock nanoseconds spent in those teardowns.
    pub teardown_ns: u64,
    /// DLHT entries retired by those teardowns.
    pub teardown_entries: u64,
    /// Resident bytes attributed to this class at end of churn (tenant
    /// DLHT footprints + occupied PCC lines).
    pub resident_bytes: u64,
}

impl ClassTally {
    fn new(class: TenantClass) -> ClassTally {
        ClassTally {
            class,
            tenants: 0,
            ops: 0,
            lookups: 0,
            miss_fs: 0,
            hist: LatencyHist::new(),
            teardowns: 0,
            teardown_ns: 0,
            teardown_entries: 0,
            resident_bytes: 0,
        }
    }

    /// Hit rate over this class's lookups (fraction that never called
    /// the file system; same definition as `DcacheStats::hit_rate`).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (1.0 - self.miss_fs as f64 / self.lookups as f64).max(0.0)
    }

    /// Mean teardown cost in microseconds (0 when the class never tears
    /// down).
    pub fn teardown_us(&self) -> f64 {
        if self.teardowns == 0 {
            return 0.0;
        }
        self.teardown_ns as f64 / self.teardowns as f64 / 1e3
    }
}

/// What one fleet run produced.
#[derive(Debug)]
pub struct FleetReport {
    /// The shape that ran.
    pub config: FleetConfig,
    /// Per-class tallies, in [`TenantClass::all`] order.
    pub classes: Vec<ClassTally>,
    /// Peak live namespace count (incl. init).
    pub peak_namespaces: usize,
    /// Distinct credentials created.
    pub creds: usize,
    /// Peak reclaimable footprint observed *after* each round's
    /// pressure pass, bytes.
    pub peak_footprint: u64,
    /// Rounds whose post-pressure footprint still exceeded the budget.
    pub over_budget_rounds: usize,
    /// Peak resident PCC instances observed.
    pub peak_resident_pccs: usize,
    /// PCCs detached by the resident cap over the run.
    pub pcc_evictions: u64,
    /// Reclaimable footprint before any tenant existed, bytes.
    pub baseline_footprint: u64,
    /// Reclaimable footprint after full fleet teardown + drain, bytes.
    pub final_footprint: u64,
    /// DLHT tables still registered after full teardown (must be 1: the
    /// init namespace's).
    pub final_dlht_tables: usize,
    /// PCC instances still attached after full teardown.
    pub final_resident_pccs: usize,
    /// Bytes the fleet failed to return: `final - baseline`, floored at
    /// zero. The teardown gate requires 0.
    pub leaked_bytes: u64,
    /// Total wall-clock seconds for the churn phase.
    pub churn_s: f64,
}

impl FleetReport {
    /// The teardown-completeness gate: every table, PCC, and byte the
    /// fleet allocated came back.
    pub fn teardown_clean(&self) -> bool {
        self.final_dlht_tables == 1 && self.final_resident_pccs <= 1 && self.leaked_bytes == 0
    }
}

/// Per-class op counters the fleet registers on the kernel as a
/// [`MetricSource`] with labeled counters (`fleet` section:
/// `hot_web.ops`, `churn_ci.teardowns`, …). Cleared by
/// [`Kernel::reset_stats`] like every other registered source.
#[derive(Debug, Default)]
pub struct FleetCounters {
    ops: [AtomicU64; 3],
    teardowns: [AtomicU64; 3],
}

impl MetricSource for FleetCounters {
    fn name(&self) -> &'static str {
        "fleet"
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
    fn labeled_counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(6);
        for class in TenantClass::all() {
            let i = class.idx();
            out.push((
                format!("{}.ops", class.key()),
                self.ops[i].load(Ordering::Relaxed),
            ));
            out.push((
                format!("{}.teardowns", class.key()),
                self.teardowns[i].load(Ordering::Relaxed),
            ));
        }
        out
    }
    fn reset(&self) {
        for i in 0..3 {
            self.ops[i].store(0, Ordering::Relaxed);
            self.teardowns[i].store(0, Ordering::Relaxed);
        }
    }
}

/// One tenant: a namespace, a driving process, and its credentials.
struct Tenant {
    idx: usize,
    class: TenantClass,
    proc: Arc<Process>,
    ns: Arc<MountNamespace>,
    creds: Vec<Arc<Cred>>,
    /// Private file paths (`/tenants/t{idx}/f{j}`).
    files: Vec<String>,
}

/// The provisioned fleet, ready to churn.
pub struct Fleet {
    /// The kernel hosting the fleet.
    pub kernel: Arc<Kernel>,
    /// Labeled per-class counters (also registered on the kernel).
    pub counters: Arc<FleetCounters>,
    cfg: FleetConfig,
    tenants: Vec<Tenant>,
    shared: Vec<String>,
    rng: Rng,
    baseline_footprint: u64,
}

impl Fleet {
    /// Provisions the kernel, the shared tree, and every tenant.
    pub fn provision(cfg: FleetConfig) -> Fleet {
        let kernel = KernelBuilder::new(cfg.dcache())
            .build()
            .expect("fleet kernel construction");
        let counters = Arc::new(FleetCounters::default());
        kernel.register_metric_source(counters.clone());
        let init = kernel.init_process();
        kernel.mkdir(&init, "/shared", 0o755).unwrap();
        kernel.mkdir(&init, "/tenants", 0o755).unwrap();
        let shared: Vec<String> = (0..cfg.shared_files)
            .map(|j| {
                let p = format!("/shared/s{j}");
                let fd = kernel.open(&init, &p, OpenFlags::create(), 0o644).unwrap();
                kernel.close(&init, fd).unwrap();
                p
            })
            .collect();
        // The leak gate's zero point: everything evictable gone, only
        // the pinned floor (roots, cwds) and the shared tree's freshly
        // re-walked entries remain.
        kernel.dcache.drop_unused();
        let baseline_footprint = kernel.dcache.reclaimable_bytes();

        let seed = cfg.seed;
        let mut fleet = Fleet {
            kernel,
            counters,
            cfg,
            tenants: Vec::new(),
            shared,
            rng: Rng(seed),
            baseline_footprint,
        };
        for idx in 0..fleet.cfg.tenants {
            let t = fleet.spawn_tenant(idx);
            fleet.tenants.push(t);
        }
        fleet
    }

    /// Creates tenant `idx`: fork from init, unshare into a fresh
    /// namespace, build the private tree, mint the credentials.
    fn spawn_tenant(&mut self, idx: usize) -> Tenant {
        let k = &self.kernel;
        let proc = k.spawn(&k.init_process());
        let ns = k.unshare_ns(&proc).expect("unshare");
        let class = TenantClass::of(idx);
        let dir = format!("/tenants/t{idx}");
        // The directory may survive a previous incarnation's teardown
        // (churn-ci respawns); only its namespace and caches died.
        let _ = k.mkdir(&proc, &dir, 0o755);
        let files: Vec<String> = (0..self.cfg.files_per_tenant)
            .map(|j| {
                let p = format!("{dir}/f{j}");
                let fd = k.open(&proc, &p, OpenFlags::create(), 0o644).unwrap();
                k.close(&proc, fd).unwrap();
                p
            })
            .collect();
        let creds: Vec<Arc<Cred>> = (0..self.cfg.creds_per_tenant)
            .map(|c| Cred::user(1000 + (idx * self.cfg.creds_per_tenant + c) as u32, 100))
            .collect();
        // Hand the tree to the tenant's primary credential before the
        // (still root-credentialed) process takes on tenant personas.
        k.chown(&proc, &dir, Some(creds[0].uid), Some(100)).unwrap();
        Tenant {
            idx,
            class,
            proc,
            ns,
            creds,
            files,
        }
    }

    /// Distinct credentials currently minted across the fleet.
    pub fn cred_count(&self) -> usize {
        self.tenants.iter().map(|t| t.creds.len()).sum()
    }

    /// Runs the configured churn rounds and the final teardown; returns
    /// the full report.
    pub fn run(mut self) -> FleetReport {
        let mut classes: Vec<ClassTally> = TenantClass::all()
            .into_iter()
            .map(ClassTally::new)
            .collect();
        for t in &self.tenants {
            classes[t.class.idx()].tenants += 1;
        }
        let mut peak_namespaces = self.kernel.namespace_count();
        let mut peak_footprint = 0u64;
        let mut over_budget_rounds = 0usize;
        let mut peak_resident_pccs = self.kernel.dcache.resident_pccs();
        let churn_start = Instant::now();

        for _round in 0..self.cfg.rounds {
            peak_namespaces = peak_namespaces.max(self.kernel.namespace_count());
            for ti in 0..self.tenants.len() {
                self.drive_tenant(ti, &mut classes);
            }
            peak_resident_pccs = peak_resident_pccs.max(self.kernel.dcache.resident_pccs());
            // The fixed budget: every round ends under pressure.
            self.kernel.memory_pressure(self.cfg.mem_budget_bytes);
            let fp = self.kernel.dcache.reclaimable_bytes();
            peak_footprint = peak_footprint.max(fp);
            if fp > self.cfg.mem_budget_bytes {
                over_budget_rounds += 1;
            }
        }
        let churn_s = churn_start.elapsed().as_secs_f64();

        // End-of-churn resident attribution: each class owns its
        // tenants' DLHT footprints and occupied PCC lines.
        let footprints: std::collections::HashMap<u64, u64> = self
            .kernel
            .dcache
            .ns_footprints()
            .into_iter()
            .map(|(ns, fp)| (ns, fp.total_bytes() as u64))
            .collect();
        for t in &self.tenants {
            let tally = &mut classes[t.class.idx()];
            tally.resident_bytes += footprints.get(&t.ns.id).copied().unwrap_or(0);
            let (_instances, occupied) = self.kernel.dcache.pcc_stats_for_ns(t.ns.id);
            tally.resident_bytes += occupied;
        }

        let pcc_evictions = self
            .kernel
            .dcache
            .stats
            .pcc_evictions
            .load(Ordering::Relaxed);

        // Full fleet teardown: destroy every namespace (O(tenant) each),
        // delete the tenant trees, drop every handle, drain epochs.
        let mut tenants = std::mem::take(&mut self.tenants);
        for t in &tenants {
            if let Some(r) = self.kernel.destroy_namespace(t.ns.id) {
                let tally = &mut classes[t.class.idx()];
                tally.teardowns += 1;
                tally.teardown_ns += r.nanos;
                tally.teardown_entries += r.dlht_entries;
                self.counters.teardowns[t.class.idx()].fetch_add(1, Ordering::Relaxed);
            }
        }
        let init = self.kernel.init_process();
        for t in &tenants {
            for f in &t.files {
                let _ = self.kernel.unlink(&init, f);
            }
            let _ = self.kernel.rmdir(&init, &format!("/tenants/t{}", t.idx));
        }
        tenants.clear(); // drops procs, namespaces, memoized DLHT handles, creds
        let (final_footprint, final_dlht_tables, final_resident_pccs) = self.drain();

        FleetReport {
            classes,
            peak_namespaces,
            creds: self.cfg.tenants * self.cfg.creds_per_tenant,
            peak_footprint,
            over_budget_rounds,
            peak_resident_pccs,
            pcc_evictions,
            baseline_footprint: self.baseline_footprint,
            final_footprint,
            final_dlht_tables,
            final_resident_pccs,
            leaked_bytes: final_footprint.saturating_sub(self.baseline_footprint),
            churn_s,
            config: self.cfg,
        }
    }

    /// One tenant's round: issue the class mix, attribute the stat
    /// deltas, sample latency. Churn-ci additionally cycles its whole
    /// namespace.
    fn drive_tenant(&mut self, ti: usize, classes: &mut [ClassTally]) {
        let lookups0 = self.kernel.dcache.stats.lookups.load(Ordering::Relaxed);
        let miss0 = self.kernel.dcache.stats.miss_fs.load(Ordering::Relaxed);
        let class = self.tenants[ti].class;
        let ops = match class {
            TenantClass::HotWeb => self.drive_hot(ti, classes),
            TenantClass::ColdBatch => self.drive_cold(ti, classes),
            TenantClass::ChurnCi => self.drive_churn(ti, classes),
        };
        let tally = &mut classes[class.idx()];
        tally.ops += ops;
        tally.lookups += self.kernel.dcache.stats.lookups.load(Ordering::Relaxed) - lookups0;
        tally.miss_fs += self.kernel.dcache.stats.miss_fs.load(Ordering::Relaxed) - miss0;
        self.counters.ops[class.idx()].fetch_add(ops, Ordering::Relaxed);
    }

    /// Stats `path` as the tenant's current persona, sampling latency
    /// 1-in-N.
    fn timed_stat(&self, ti: usize, path: &str, op_no: usize, classes: &mut [ClassTally]) {
        let t = &self.tenants[ti];
        if op_no.is_multiple_of(self.cfg.sample_every) {
            let start = Instant::now();
            let _ = self.kernel.stat(&t.proc, path);
            classes[t.class.idx()]
                .hist
                .record(start.elapsed().as_nanos() as u64);
        } else {
            let _ = self.kernel.stat(&t.proc, path);
        }
    }

    fn drive_hot(&mut self, ti: usize, classes: &mut [ClassTally]) -> u64 {
        let n = self.cfg.ops_per_tenant;
        let ncreds = self.tenants[ti].creds.len();
        let nfiles = self.tenants[ti].files.len();
        for op in 0..n {
            // 90% of ops run as the hot credential, the rest rotate.
            let c = if self.rng.next() % 10 < 9 {
                0
            } else {
                1 + (self.rng.next() as usize % (ncreds - 1).max(1))
            };
            // 3 in 4 ops hit the private hot set, 1 in 4 the shared tree.
            let private = self.rng.next() % 4 < 3;
            let k = if private {
                self.rng.skewed(nfiles)
            } else {
                self.rng.skewed(self.shared.len())
            };
            let t = &self.tenants[ti];
            t.proc.set_cred(t.creds[c % ncreds].clone());
            let path = if private {
                t.files[k].clone()
            } else {
                self.shared[k].clone()
            };
            self.timed_stat(ti, &path, op, classes);
        }
        n as u64
    }

    fn drive_cold(&mut self, ti: usize, classes: &mut [ClassTally]) -> u64 {
        let n = self.cfg.ops_per_tenant;
        for op in 0..n {
            let c = self.rng.next() as usize;
            let t = &self.tenants[ti];
            t.proc.set_cred(t.creds[c % t.creds.len()].clone());
            // Sequential scan: walk the private tree in order, spilling
            // into the shared tree when the scan wraps.
            let path = if op < t.files.len() {
                t.files[op].clone()
            } else {
                self.shared[(op - t.files.len()) % self.shared.len()].clone()
            };
            self.timed_stat(ti, &path, op, classes);
        }
        n as u64
    }

    /// CI tenant: scratch tree create → stat → delete, then the whole
    /// namespace dies and the tenant respawns into a fresh one.
    fn drive_churn(&mut self, ti: usize, classes: &mut [ClassTally]) -> u64 {
        let n = self.cfg.ops_per_tenant;
        let idx = self.tenants[ti].idx;
        let scratch = format!("/tenants/t{idx}/build");
        {
            let t = &self.tenants[ti];
            t.proc.set_cred(t.creds[0].clone());
            self.kernel.mkdir(&t.proc, &scratch, 0o755).unwrap();
        }
        let artifacts = (n / 4).max(1);
        for j in 0..artifacts {
            let t = &self.tenants[ti];
            let p = format!("{scratch}/o{j}");
            let fd = self
                .kernel
                .open(&t.proc, &p, OpenFlags::create(), 0o644)
                .unwrap();
            self.kernel.close(&t.proc, fd).unwrap();
        }
        for op in 0..n {
            let p = format!("{scratch}/o{}", self.rng.next() as usize % artifacts);
            self.timed_stat(ti, &p, op, classes);
        }
        for j in 0..artifacts {
            let t = &self.tenants[ti];
            self.kernel
                .unlink(&t.proc, &format!("{scratch}/o{j}"))
                .unwrap();
        }
        {
            let t = &self.tenants[ti];
            self.kernel.rmdir(&t.proc, &scratch).unwrap();
        }
        // The CI run is over: the namespace — DLHT, PCCs and all — dies,
        // and the next round gets a fresh one. O(tenant), not O(fleet).
        let dead_ns = self.tenants[ti].ns.id;
        if let Some(r) = self.kernel.destroy_namespace(dead_ns) {
            self.absorb_teardown(ti, &r, classes);
        }
        let respawn = self.spawn_tenant(idx);
        self.tenants[ti] = respawn;
        n as u64
    }

    fn absorb_teardown(&self, ti: usize, r: &TeardownReport, classes: &mut [ClassTally]) {
        let class = self.tenants[ti].class;
        let tally = &mut classes[class.idx()];
        tally.teardowns += 1;
        tally.teardown_ns += r.nanos;
        tally.teardown_entries += r.dlht_entries;
        self.counters.teardowns[class.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Post-teardown drain: evict everything evictable, flush the epoch
    /// collector until retired garbage stops trickling back, and read
    /// the final occupancy numbers.
    fn drain(&self) -> (u64, usize, usize) {
        for _ in 0..4 {
            self.kernel.dcache.drop_unused();
            self.kernel.dcache.flush_all_pccs();
            crossbeam_epoch::pin().flush();
            crossbeam_epoch::pin().flush();
        }
        (
            self.kernel.dcache.reclaimable_bytes(),
            self.kernel.dcache.dlht_count(),
            self.kernel.dcache.resident_pccs(),
        )
    }
}

/// Provisions and runs a fleet in one call.
pub fn run(cfg: FleetConfig) -> FleetReport {
    Fleet::provision(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> FleetConfig {
        FleetConfig {
            tenants: 12,
            creds_per_tenant: 3,
            files_per_tenant: 4,
            shared_files: 8,
            rounds: 2,
            ops_per_tenant: 8,
            mem_budget_bytes: 64 << 20,
            pcc_max_resident: 16,
            pcc_bytes: 4 * 1024,
            tenant_buckets: 1 << 6,
            sample_every: 2,
            seed,
        }
    }

    #[test]
    fn tiny_fleet_runs_clean() {
        let report = run(tiny(7));
        assert_eq!(report.classes.len(), 3);
        for tally in &report.classes {
            assert!(tally.ops > 0, "{:?} issued no ops", tally.class);
            assert!(tally.lookups > 0);
        }
        assert!(report.peak_namespaces >= 12);
        assert_eq!(report.creds, 36);
        assert!(
            report.classes[TenantClass::ChurnCi.idx()].teardowns
                >= report.classes[TenantClass::ChurnCi.idx()].tenants as u64,
            "churn tenants must tear down at least once per round"
        );
        assert!(report.teardown_clean(), "leak: {report:?}");
    }

    #[test]
    fn runs_are_deterministic_in_ops() {
        let a = run(tiny(42));
        let b = run(tiny(42));
        for (x, y) in a.classes.iter().zip(b.classes.iter()) {
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.lookups, y.lookups);
            assert_eq!(x.miss_fs, y.miss_fs);
        }
    }

    #[test]
    fn pcc_cap_evicts_under_cred_pressure() {
        let report = run(tiny(3));
        assert!(
            report.peak_resident_pccs <= 16 + 1,
            "cap breached: {} resident",
            report.peak_resident_pccs
        );
        // 36 creds × fresh PCCs per round vs a cap of 16: the policy
        // must have detached something.
        assert!(report.pcc_evictions > 0);
    }

    #[test]
    fn labeled_counters_reset_with_kernel_stats() {
        let fleet = Fleet::provision(tiny(9));
        let kernel = fleet.kernel.clone();
        let counters = fleet.counters.clone();
        let report = fleet.run();
        assert!(report.teardown_clean());
        assert!(counters.labeled_counters().iter().any(|(_, v)| *v > 0));
        kernel.reset_stats();
        assert!(counters.labeled_counters().iter().all(|(_, v)| *v == 0));
    }
}
