//! The raw simulated device.

use crate::crash::{CrashImage, CrashMonitor};
use crate::latency::LatencyModel;
use crate::BLOCK_SIZE;
use bytes::Bytes;
use dc_fault::{FaultInjector, FaultKind, IoOp};
use dc_obs::{FaultClass, Recorder, TraceEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Errors surfaced by the block layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Access past the configured device capacity.
    OutOfRange { block: u64, capacity: u64 },
    /// Buffer length does not match the block size.
    BadLength { got: usize, want: usize },
    /// The device failed the access (injected or real). `transient`
    /// faults may succeed if retried; permanent ones will not.
    Io { block: u64, transient: bool },
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::OutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            BlockError::BadLength { got, want } => {
                write!(f, "buffer length {got} != block size {want}")
            }
            BlockError::Io { block, transient } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "{kind} I/O error on block {block}")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// Result type for block operations.
pub type BlockResult<T> = Result<T, BlockError>;

/// Configuration for a simulated disk.
#[derive(Debug)]
pub struct DiskConfig {
    /// Block size in bytes.
    pub block_size: usize,
    /// Device capacity in blocks.
    pub capacity_blocks: u64,
    /// Device access latency model.
    pub latency: LatencyModel,
    /// Page-cache capacity in pages (0 disables caching).
    pub cache_pages: usize,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            block_size: BLOCK_SIZE,
            capacity_blocks: 1 << 22, // 16 GiB of 4 KiB blocks
            latency: LatencyModel::free(),
            cache_pages: 16384, // 64 MiB
        }
    }
}

/// A sparse simulated block device.
///
/// Unwritten blocks read back as zeroes, like a fresh disk. Every access
/// charges the latency model and bumps the device counters; the page cache
/// in front of it ([`crate::CachedDisk`]) is what keeps hot metadata cheap.
pub struct RawDisk {
    block_size: usize,
    capacity_blocks: u64,
    blocks: Mutex<HashMap<u64, Bytes>>,
    latency: LatencyModel,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Observability hook, attached after construction (disks are built
    /// deep inside FS setup, before any kernel exists). `OnceLock` keeps
    /// the read side lock-free; first attachment wins.
    obs: OnceLock<Recorder>,
    /// Fault-injection hook, same attachment discipline as `obs`. A
    /// disk with no injector (or a disarmed one) behaves perfectly.
    fault: OnceLock<Arc<FaultInjector>>,
    /// Power-cut hook, same attachment discipline. An armed monitor
    /// snapshots the raw image at seeded flushed-write ordinals.
    crash: OnceLock<Arc<CrashMonitor>>,
}

impl RawDisk {
    /// Creates an empty device.
    pub fn new(block_size: usize, capacity_blocks: u64, latency: LatencyModel) -> Self {
        assert!(block_size.is_power_of_two() && block_size >= 512);
        RawDisk {
            block_size,
            capacity_blocks,
            blocks: Mutex::new(HashMap::new()),
            latency,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            obs: OnceLock::new(),
            fault: OnceLock::new(),
            crash: OnceLock::new(),
        }
    }

    /// A device whose initial contents come from a captured
    /// [`CrashImage`] — what a machine finds on its disk after the
    /// power came back.
    pub fn from_image(image: &CrashImage, latency: LatencyModel) -> Self {
        let disk = RawDisk::new(image.block_size, image.capacity_blocks, latency);
        *disk.blocks.lock() = image.blocks.clone();
        disk
    }

    /// Attaches an observability recorder; every device access reports a
    /// `BlockIo` span from then on. Later attachments are ignored.
    pub fn attach_recorder(&self, obs: Recorder) {
        let _ = self.obs.set(obs);
    }

    /// Attaches a fault injector; every access from then on consults it
    /// (a disarmed injector costs one atomic load). First attachment
    /// wins, matching the recorder discipline.
    pub fn attach_fault_injector(&self, injector: Arc<FaultInjector>) {
        let _ = self.fault.set(injector);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.get()
    }

    /// Attaches a power-cut monitor; every flushed write from then on
    /// is a candidate crash point. First attachment wins.
    pub fn attach_crash_monitor(&self, monitor: Arc<CrashMonitor>) {
        let _ = self.crash.set(monitor);
    }

    /// The attached crash monitor, if any.
    pub fn crash_monitor(&self) -> Option<&Arc<CrashMonitor>> {
        self.crash.get()
    }

    pub(crate) fn recorder(&self) -> Option<&Recorder> {
        self.obs.get()
    }

    /// Reports an injected fault to the recorder, if one is attached.
    fn record_fault(&self, kind: FaultKind) {
        if let Some(obs) = self.obs.get() {
            let class = match kind {
                FaultKind::Transient => FaultClass::Transient,
                FaultKind::Permanent => FaultClass::Permanent,
                FaultKind::ShortRead => FaultClass::ShortRead,
                FaultKind::LatencySpikeNs(_) => FaultClass::LatencySpike,
            };
            obs.event(|| TraceEvent::FaultInjected { class });
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn check(&self, block: u64) -> BlockResult<()> {
        if block >= self.capacity_blocks {
            return Err(BlockError::OutOfRange {
                block,
                capacity: self.capacity_blocks,
            });
        }
        Ok(())
    }

    /// Reads one block, charging device latency.
    ///
    /// With an armed fault injector attached, the access may fail with
    /// [`BlockError::Io`], stall for an injected latency spike, or
    /// return a *short* buffer (fewer bytes than a block — a torn read
    /// the caller must detect; [`crate::CachedDisk`] treats it as
    /// transient and retries).
    pub fn read_block(&self, block: u64) -> BlockResult<Bytes> {
        self.check(block)?;
        let fault = self
            .fault
            .get()
            .and_then(|inj| inj.decide(IoOp::Read, block));
        if let Some(kind) = fault {
            self.record_fault(kind);
            match kind {
                FaultKind::Transient | FaultKind::Permanent => {
                    // A failed access still spins the device, but the
                    // read counter only tracks completed transfers.
                    self.latency.charge_read();
                    return Err(BlockError::Io {
                        block,
                        transient: kind == FaultKind::Transient,
                    });
                }
                FaultKind::LatencySpikeNs(ns) => self.latency.charge_extra(ns),
                FaultKind::ShortRead => {}
            }
        }
        self.latency.charge_read();
        self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.event(|| TraceEvent::BlockIo {
                blks: 1,
                ns: self.latency.read_cost_ns(),
            });
        }
        let data = {
            let guard = self.blocks.lock();
            match guard.get(&block) {
                Some(b) => b.clone(),
                None => Bytes::from(vec![0u8; self.block_size]),
            }
        };
        if fault == Some(FaultKind::ShortRead) {
            // Torn read: the transfer stopped partway through the block.
            return Ok(Bytes::copy_from_slice(&data[..self.block_size / 2]));
        }
        Ok(data)
    }

    /// Writes one block, charging device latency.
    ///
    /// Subject to the same fault injection as reads; a `ShortRead` rule
    /// that matches a write surfaces as a transient error (a torn write
    /// the device detects and reports).
    pub fn write_block(&self, block: u64, data: &[u8]) -> BlockResult<()> {
        self.check(block)?;
        if data.len() != self.block_size {
            return Err(BlockError::BadLength {
                got: data.len(),
                want: self.block_size,
            });
        }
        if let Some(kind) = self
            .fault
            .get()
            .and_then(|inj| inj.decide(IoOp::Write, block))
        {
            self.record_fault(kind);
            match kind {
                FaultKind::Transient | FaultKind::ShortRead | FaultKind::Permanent => {
                    self.latency.charge_write();
                    return Err(BlockError::Io {
                        block,
                        transient: kind != FaultKind::Permanent,
                    });
                }
                FaultKind::LatencySpikeNs(ns) => self.latency.charge_extra(ns),
            }
        }
        self.latency.charge_write();
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.event(|| TraceEvent::BlockIo {
                blks: 1,
                ns: self.latency.write_cost_ns(),
            });
        }
        let mut guard = self.blocks.lock();
        let prior = guard.get(&block).cloned();
        guard.insert(block, Bytes::copy_from_slice(data));
        // Crash capture happens under the same lock hold as the insert,
        // so the snapshot is exactly the durable state after this write
        // even with concurrent writers.
        if let Some(mon) = self.crash.get() {
            if let Some(cut) = mon.note_write() {
                let mut blocks = guard.clone();
                let torn_block = if cut.torn {
                    // Tear the in-flight write: the first half of the
                    // new data landed, the rest of the sector still
                    // holds the old bytes (zeroes if never written).
                    let half = self.block_size / 2;
                    let mut torn = match &prior {
                        Some(old) => old.to_vec(),
                        None => vec![0u8; self.block_size],
                    };
                    torn[..half].copy_from_slice(&data[..half]);
                    blocks.insert(block, Bytes::from(torn));
                    Some(block)
                } else {
                    None
                };
                mon.store(CrashImage {
                    cut_at_write: cut.ordinal,
                    torn_block,
                    block_size: self.block_size,
                    capacity_blocks: self.capacity_blocks,
                    blocks,
                });
            }
        }
        Ok(())
    }

    /// Number of device-level reads performed.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of device-level writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Resets the access counters.
    pub fn reset_counters(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// The latency model (for accounting queries).
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> RawDisk {
        RawDisk::new(512, 64, LatencyModel::free())
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = disk();
        let b = d.read_block(3).unwrap();
        assert!(b.iter().all(|&x| x == 0));
        assert_eq!(b.len(), 512);
    }

    #[test]
    fn write_then_read_round_trips() {
        let d = disk();
        let data = vec![7u8; 512];
        d.write_block(9, &data).unwrap();
        assert_eq!(&d.read_block(9).unwrap()[..], &data[..]);
    }

    #[test]
    fn out_of_range_rejected() {
        let d = disk();
        assert!(matches!(
            d.read_block(64),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write_block(99, &[0u8; 512]),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn bad_length_rejected() {
        let d = disk();
        assert!(matches!(
            d.write_block(0, &[0u8; 100]),
            Err(BlockError::BadLength { .. })
        ));
    }

    #[test]
    fn counters_track_accesses() {
        let d = disk();
        d.write_block(0, &[1u8; 512]).unwrap();
        d.read_block(0).unwrap();
        d.read_block(1).unwrap();
        assert_eq!(d.writes(), 1);
        assert_eq!(d.reads(), 2);
    }
}
