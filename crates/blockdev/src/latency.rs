//! Device latency simulation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Models per-access device latency.
///
/// Two accounting modes are combined:
///
/// - **Virtual accounting** always sums the configured cost into a counter
///   so experiments can report "simulated I/O time" deterministically.
/// - **Real spinning** (`spin: true`) additionally busy-waits for the
///   configured duration, so wall-clock benchmark numbers reflect device
///   cost. Spinning (not sleeping) is used because OS sleep granularity is
///   far coarser than the tens of microseconds being modeled.
#[derive(Debug)]
pub struct LatencyModel {
    read_ns: u64,
    write_ns: u64,
    hit_ns: u64,
    spin: bool,
    accounted_ns: AtomicU64,
}

impl LatencyModel {
    /// A model with the given costs; `spin` selects real busy-waiting.
    pub fn new(read_ns: u64, write_ns: u64, spin: bool) -> Self {
        LatencyModel {
            read_ns,
            write_ns,
            hit_ns: 0,
            spin,
            accounted_ns: AtomicU64::new(0),
        }
    }

    /// Adds a per-page-cache-hit cost, modeling the buffer-cache lookup
    /// and on-disk-format translation work a real kernel pays even when
    /// metadata is memory-resident (§5: "at best ... must be translated").
    pub fn with_hit_ns(mut self, hit_ns: u64) -> Self {
        self.hit_ns = hit_ns;
        self
    }

    /// Charges one page-cache hit.
    pub fn charge_hit(&self) {
        self.charge(self.hit_ns);
    }

    /// Zero-cost model (unit tests, correctness-only runs).
    pub fn free() -> Self {
        Self::new(0, 0, false)
    }

    /// A model loosely matching a 7200 RPM disk whose queue is mostly warm:
    /// short seeks dominate. Used by cold-cache experiments.
    pub fn disk_like() -> Self {
        Self::new(50_000, 60_000, true)
    }

    /// Charges one read access.
    pub fn charge_read(&self) {
        self.charge(self.read_ns);
    }

    /// Charges one write access.
    pub fn charge_write(&self) {
        self.charge(self.write_ns);
    }

    /// Charges an arbitrary extra cost (injected latency spikes, retry
    /// backoff). Spins for real when the model does.
    pub fn charge_extra(&self, ns: u64) {
        self.charge(ns);
    }

    fn charge(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        self.accounted_ns.fetch_add(ns, Ordering::Relaxed);
        if self.spin {
            let deadline = Instant::now() + Duration::from_nanos(ns);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    /// Configured cost of one read access, nanoseconds.
    pub fn read_cost_ns(&self) -> u64 {
        self.read_ns
    }

    /// Configured cost of one write access, nanoseconds.
    pub fn write_cost_ns(&self) -> u64 {
        self.write_ns
    }

    /// Total simulated device time charged so far, in nanoseconds.
    pub fn accounted_ns(&self) -> u64 {
        self.accounted_ns.load(Ordering::Relaxed)
    }

    /// Resets the virtual accounting (between experiment phases).
    pub fn reset_accounting(&self) {
        self.accounted_ns.store(0, Ordering::Relaxed);
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let m = LatencyModel::free();
        m.charge_read();
        m.charge_write();
        assert_eq!(m.accounted_ns(), 0);
    }

    #[test]
    fn virtual_accounting_accumulates() {
        let m = LatencyModel::new(100, 250, false);
        m.charge_read();
        m.charge_read();
        m.charge_write();
        assert_eq!(m.accounted_ns(), 450);
        m.reset_accounting();
        assert_eq!(m.accounted_ns(), 0);
    }

    #[test]
    fn spinning_takes_wall_time() {
        let m = LatencyModel::new(2_000_000, 0, true); // 2 ms
        let t0 = Instant::now();
        m.charge_read();
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }
}
