//! Write-back page cache in front of the raw device.

use crate::device::{BlockError, BlockResult, DiskConfig, RawDisk};
use crate::lru::LruList;
use bytes::Bytes;
use dc_fault::RetryPolicy;
use dc_obs::TraceEvent;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate I/O statistics for a [`CachedDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Page-cache hits.
    pub cache_hits: u64,
    /// Page-cache misses (caused a device read).
    pub cache_misses: u64,
    /// Reads that reached the device.
    pub device_reads: u64,
    /// Writes that reached the device.
    pub device_writes: u64,
    /// Dirty pages written back due to eviction pressure.
    pub writebacks: u64,
    /// Simulated device time, nanoseconds.
    pub simulated_io_ns: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
    /// Transiently failed accesses retried after backoff.
    pub io_retries: u64,
    /// Accesses that failed for good (permanent fault, or a transient
    /// burst that outlasted the retry budget).
    pub io_errors: u64,
    /// Faults the attached injector has fired (0 without an injector).
    pub faults_injected: u64,
}

struct Page {
    data: Bytes,
    dirty: bool,
    /// Slab slot in the LRU list.
    slot: usize,
}

struct CacheInner {
    pages: HashMap<u64, Page>,
    /// Maps LRU slab slots back to block numbers.
    slot_to_block: Vec<u64>,
    free_slots: Vec<usize>,
    lru: LruList,
}

impl CacheInner {
    fn alloc_slot(&mut self, block: u64) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            self.slot_to_block[slot] = block;
            slot
        } else {
            self.slot_to_block.push(block);
            self.slot_to_block.len() - 1
        }
    }
}

/// Which pages a [`CachedDisk::sync_report`] pass flushed, and which
/// it could not.
///
/// Failed pages **stay dirty**: a later sync retries them losslessly
/// once the device heals — nothing is dropped on EIO.
#[derive(Debug, Default)]
pub struct SyncOutcome {
    /// Dirty pages successfully written to the device this pass.
    pub flushed: u64,
    /// Pages whose writeback failed (still dirty), with the error each
    /// one hit. Sorted by block number for deterministic reporting.
    pub failed: Vec<(u64, BlockError)>,
}

impl SyncOutcome {
    /// Whether every dirty page reached the device.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }
}

/// A write-back LRU page cache over a [`RawDisk`].
///
/// This is the substrate analog of the Linux buffer/page cache: dcache
/// misses that reach the low-level file system first consult this cache,
/// so a *warm-cache* miss pays deserialization but no device latency, while
/// a *cold-cache* miss (after [`CachedDisk::drop_caches`]) pays both —
/// the two miss tiers of §5 of the paper.
///
/// # Write-ordering contract
///
/// Write-back caching gives **no ordering**: dirty pages reach the
/// device in arbitrary LRU/sync order, and a power cut
/// ([`CachedDisk::power_cut`], or a [`crate::CrashMonitor`] cut point)
/// loses every page that has not been flushed. Callers that need
/// ordering — a journal whose commit record must not precede its
/// payload — use the two ordered primitives:
///
/// * [`CachedDisk::flush_blocks`] synchronously writes the named pages
///   to the device **in argument order**, stopping at the first error.
///   Each simulated device write is atomic, so after `flush_blocks(A)`
///   returns `Ok`, every block of `A` is durable before any later
///   write is issued.
/// * [`CachedDisk::barrier`] flushes *all* dirty pages and returns the
///   first error; on `Ok(())` every write issued before the call is
///   durable, so no write issued after it can reach the device first.
///
/// The journal's commit discipline is therefore
/// `flush_blocks(payload)` → `flush_blocks([commit_record])`: the
/// commit record is provably the last block of the transaction to
/// become durable.
pub struct CachedDisk {
    disk: RawDisk,
    capacity_pages: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    retry: RetryPolicy,
    io_retries: AtomicU64,
    io_errors: AtomicU64,
}

impl CachedDisk {
    /// The device's latency model (for hit-cost accounting queries).
    pub fn latency(&self) -> &crate::LatencyModel {
        self.disk.latency()
    }

    /// Attaches an observability recorder to the underlying device;
    /// reads and writes that reach it (i.e. page-cache misses and
    /// writebacks) report `BlockIo` spans from then on.
    pub fn attach_recorder(&self, obs: dc_obs::Recorder) {
        self.disk.attach_recorder(obs);
    }

    /// Attaches a fault injector to the underlying device (see
    /// [`RawDisk::attach_fault_injector`]). Transient faults it injects
    /// are absorbed by this cache's retry policy.
    pub fn attach_fault_injector(&self, injector: std::sync::Arc<dc_fault::FaultInjector>) {
        self.disk.attach_fault_injector(injector);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&std::sync::Arc<dc_fault::FaultInjector>> {
        self.disk.fault_injector()
    }

    /// Replaces the transient-error retry policy (builder style, before
    /// the disk is shared).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The transient-error retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Creates a cached disk per `config`.
    pub fn new(config: DiskConfig) -> Self {
        let DiskConfig {
            block_size,
            capacity_blocks,
            latency,
            cache_pages,
        } = config;
        CachedDisk {
            disk: RawDisk::new(block_size, capacity_blocks, latency),
            capacity_pages: cache_pages,
            inner: Mutex::new(CacheInner {
                pages: HashMap::new(),
                slot_to_block: Vec::new(),
                free_slots: Vec::new(),
                lru: LruList::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            retry: RetryPolicy::default(),
            io_retries: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// A cached disk rehydrated from a captured [`crate::CrashImage`]:
    /// the device holds exactly the blocks that were durable at the
    /// cut, and the page cache starts **cold** — the machine just
    /// rebooted.
    pub fn from_image(
        image: &crate::CrashImage,
        cache_pages: usize,
        latency: crate::LatencyModel,
    ) -> Self {
        CachedDisk {
            disk: RawDisk::from_image(image, latency),
            capacity_pages: cache_pages,
            inner: Mutex::new(CacheInner {
                pages: HashMap::new(),
                slot_to_block: Vec::new(),
                free_slots: Vec::new(),
                lru: LruList::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            retry: RetryPolicy::default(),
            io_retries: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Attaches a power-cut monitor to the underlying device (see
    /// [`RawDisk::attach_crash_monitor`]).
    pub fn attach_crash_monitor(&self, monitor: std::sync::Arc<crate::CrashMonitor>) {
        self.disk.attach_crash_monitor(monitor);
    }

    /// The attached crash monitor, if any.
    pub fn crash_monitor(&self) -> Option<&std::sync::Arc<crate::CrashMonitor>> {
        self.disk.crash_monitor()
    }

    /// The observability recorder attached to the underlying device,
    /// if any (journal commit/replay events are reported through it).
    pub fn recorder(&self) -> Option<&dc_obs::Recorder> {
        self.disk.recorder()
    }

    /// One device read with bounded retry: transient errors and short
    /// (torn) reads are retried up to the policy's attempt budget, each
    /// retry charging exponential backoff to the latency model. The
    /// final failure — or any non-transient error — propagates.
    fn device_read(&self, block: u64) -> BlockResult<Bytes> {
        let mut attempt: u32 = 0;
        loop {
            let err = match self.disk.read_block(block) {
                Ok(data) if data.len() == self.disk.block_size() => return Ok(data),
                // Short read: detected here by length, retried like a
                // transient device error.
                Ok(_) => BlockError::Io {
                    block,
                    transient: true,
                },
                Err(
                    e @ BlockError::Io {
                        transient: true, ..
                    },
                ) => e,
                Err(e) => {
                    if matches!(e, BlockError::Io { .. }) {
                        self.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            };
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
            self.backoff(attempt);
        }
    }

    /// One device write with the same bounded-retry discipline.
    fn device_write(&self, block: u64, data: &[u8]) -> BlockResult<()> {
        let mut attempt: u32 = 0;
        loop {
            let err = match self.disk.write_block(block, data) {
                Ok(()) => return Ok(()),
                Err(
                    e @ BlockError::Io {
                        transient: true, ..
                    },
                ) => e,
                Err(e) => {
                    if matches!(e, BlockError::Io { .. }) {
                        self.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            };
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
            self.backoff(attempt);
        }
    }

    fn backoff(&self, attempt: u32) {
        let backoff_ns = self.retry.backoff_ns(attempt - 1);
        self.disk.latency().charge_extra(backoff_ns);
        self.io_retries.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.disk.recorder() {
            obs.event(|| TraceEvent::IoRetry {
                attempt,
                backoff_ns,
            });
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.disk.block_size()
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.disk.capacity_blocks()
    }

    /// Reads one block through the cache.
    pub fn read_block(&self, block: u64) -> BlockResult<Bytes> {
        if self.capacity_pages == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.device_read(block);
        }
        {
            let mut inner = self.inner.lock();
            if let Some(page) = inner.pages.get(&block) {
                let slot = page.slot;
                let data = page.data.clone();
                inner.lru.touch(slot);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk.latency().charge_hit();
                return Ok(data);
            }
        }
        // Miss: read from the device outside the cache lock so that a
        // spinning latency model does not serialize unrelated hits.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = self.device_read(block)?;
        let mut inner = self.inner.lock();
        // A racing reader may have inserted it meanwhile; keep theirs.
        if !inner.pages.contains_key(&block) {
            self.insert_locked(&mut inner, block, data.clone(), false)?;
        }
        Ok(data)
    }

    /// Writes one block through the cache (write-back: device copy deferred
    /// until [`CachedDisk::sync`], eviction, or [`CachedDisk::drop_caches`]).
    pub fn write_block(&self, block: u64, data: &[u8]) -> BlockResult<()> {
        if block >= self.disk.capacity_blocks() {
            // Surface range errors eagerly even in write-back mode.
            return self.device_write(block, data);
        }
        if data.len() != self.disk.block_size() {
            return Err(crate::BlockError::BadLength {
                got: data.len(),
                want: self.disk.block_size(),
            });
        }
        if self.capacity_pages == 0 {
            return self.device_write(block, data);
        }
        let bytes = Bytes::copy_from_slice(data);
        let mut inner = self.inner.lock();
        if let Some(page) = inner.pages.get_mut(&block) {
            page.data = bytes;
            page.dirty = true;
            let slot = page.slot;
            inner.lru.touch(slot);
            return Ok(());
        }
        self.insert_locked(&mut inner, block, bytes, true)
    }

    fn insert_locked(
        &self,
        inner: &mut CacheInner,
        block: u64,
        data: Bytes,
        dirty: bool,
    ) -> BlockResult<()> {
        while inner.pages.len() >= self.capacity_pages {
            let Some(victim_slot) = inner.lru.pop_lru() else {
                break;
            };
            let victim_block = inner.slot_to_block[victim_slot];
            if let Some(victim) = inner.pages.remove(&victim_block) {
                inner.free_slots.push(victim_slot);
                if victim.dirty {
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = self.device_write(victim_block, &victim.data) {
                        // Writeback failed for good: put the victim back
                        // (still dirty) rather than losing the data, and
                        // surface the error to the caller.
                        inner.pages.insert(victim_block, victim);
                        inner.lru.push_front(victim_slot);
                        inner.free_slots.pop();
                        return Err(e);
                    }
                }
            }
        }
        let slot = inner.alloc_slot(block);
        inner.pages.insert(block, Page { data, dirty, slot });
        inner.lru.push_front(slot);
        Ok(())
    }

    /// Writes all dirty pages back to the device.
    ///
    /// Best effort: every dirty page is attempted (with retry); pages
    /// that fail stay dirty for a later sync, and the first error is
    /// returned after the full pass. Use [`CachedDisk::sync_report`]
    /// to learn exactly which pages failed.
    pub fn sync(&self) -> BlockResult<()> {
        let outcome = self.sync_report();
        match outcome.failed.first() {
            Some(&(_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Writes all dirty pages back to the device, reporting exactly
    /// which pages flushed and which failed.
    ///
    /// Lossless on failure: every failed page **stays dirty**, so once
    /// the device heals a later `sync`/`sync_report` retries precisely
    /// the pages that were left behind — no data is dropped and no page
    /// is ambiguously "maybe flushed".
    pub fn sync_report(&self) -> SyncOutcome {
        let mut inner = self.inner.lock();
        // Collect first: writing under iteration would alias the map
        // borrow. Sorted so failure reporting is deterministic.
        let mut dirty: Vec<(u64, Bytes)> = inner
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&b, p)| (b, p.data.clone()))
            .collect();
        dirty.sort_unstable_by_key(|&(b, _)| b);
        let mut outcome = SyncOutcome::default();
        for (block, data) in dirty {
            match self.device_write(block, &data) {
                Ok(()) => {
                    if let Some(p) = inner.pages.get_mut(&block) {
                        p.dirty = false;
                    }
                    outcome.flushed += 1;
                }
                Err(e) => outcome.failed.push((block, e)),
            }
        }
        outcome
    }

    /// Synchronously writes the named pages to the device **in argument
    /// order**, stopping at the first error (see the write-ordering
    /// contract in the type docs). Pages that are clean, absent, or
    /// beyond capacity are skipped — they are already durable or have
    /// nothing to flush. Flushed pages are marked clean.
    pub fn flush_blocks(&self, blocks: &[u64]) -> BlockResult<()> {
        if self.capacity_pages == 0 {
            return Ok(()); // write-through: everything already durable
        }
        let mut inner = self.inner.lock();
        for &block in blocks {
            let Some(page) = inner.pages.get(&block) else {
                continue;
            };
            if !page.dirty {
                continue;
            }
            let data = page.data.clone();
            self.device_write(block, &data)?;
            if let Some(p) = inner.pages.get_mut(&block) {
                p.dirty = false;
            }
        }
        Ok(())
    }

    /// Flushes every dirty page and returns the first error, leaving
    /// failed pages dirty. On `Ok(())` all writes issued before this
    /// call are durable, so no later write can reach the device ahead
    /// of them — the full-cache ordering barrier of the write-ordering
    /// contract.
    pub fn barrier(&self) -> BlockResult<()> {
        self.sync()
    }

    /// Simulates a power cut: every resident page is discarded with
    /// **no writeback** — dirty data that never reached the device is
    /// gone, exactly as if the plug was pulled. Returns the number of
    /// dirty pages lost. The device keeps only what was flushed.
    pub fn power_cut(&self) -> u64 {
        let mut inner = self.inner.lock();
        let lost = inner.pages.values().filter(|p| p.dirty).count() as u64;
        inner.pages.clear();
        inner.lru.clear();
        inner.free_slots.clear();
        inner.slot_to_block.clear();
        lost
    }

    /// Flushes and discards every resident page (the `echo 3 >
    /// /proc/sys/vm/drop_caches` analog used for cold-cache runs).
    ///
    /// Never panics: clean pages and successfully written-back dirty
    /// pages are dropped; dirty pages whose writeback fails (even after
    /// retry) are *retained*, still dirty, so the data survives for a
    /// later sync once the device heals.
    pub fn drop_caches(&self) {
        let mut inner = self.inner.lock();
        let all: Vec<(u64, Page)> = {
            let blocks: Vec<u64> = inner.pages.keys().copied().collect();
            blocks
                .into_iter()
                .filter_map(|b| inner.pages.remove(&b).map(|p| (b, p)))
                .collect()
        };
        inner.lru.clear();
        inner.free_slots.clear();
        inner.slot_to_block.clear();
        for (block, page) in all {
            if page.dirty && self.device_write(block, &page.data).is_err() {
                // insert_locked cannot fail here: the cache was just
                // emptied, so no eviction (and thus no writeback) runs.
                let _ = self.insert_locked(&mut inner, block, page.data, true);
            }
        }
    }

    /// Resets hit/miss and device statistics (residency is unaffected).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.io_retries.store(0, Ordering::Relaxed);
        self.io_errors.store(0, Ordering::Relaxed);
        self.disk.reset_counters();
        self.disk.latency().reset_accounting();
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            device_reads: self.disk.reads(),
            device_writes: self.disk.writes(),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            simulated_io_ns: self.disk.latency().accounted_ns(),
            resident_pages: self.inner.lock().pages.len() as u64,
            io_retries: self.io_retries.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            faults_injected: self
                .disk
                .fault_injector()
                .map(|inj| inj.stats().total())
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;

    fn small_cache(pages: usize) -> CachedDisk {
        CachedDisk::new(DiskConfig {
            block_size: 512,
            capacity_blocks: 1024,
            latency: LatencyModel::free(),
            cache_pages: pages,
        })
    }

    #[test]
    fn read_hits_after_first_miss() {
        let d = small_cache(8);
        d.read_block(5).unwrap();
        d.read_block(5).unwrap();
        let s = d.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.device_reads, 1);
    }

    #[test]
    fn writes_are_write_back() {
        let d = small_cache(8);
        d.write_block(1, &[9u8; 512]).unwrap();
        assert_eq!(d.stats().device_writes, 0);
        d.sync().unwrap();
        assert_eq!(d.stats().device_writes, 1);
        // Second sync writes nothing new.
        d.sync().unwrap();
        assert_eq!(d.stats().device_writes, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let d = small_cache(2);
        d.write_block(0, &[1u8; 512]).unwrap();
        d.write_block(1, &[2u8; 512]).unwrap();
        d.write_block(2, &[3u8; 512]).unwrap(); // evicts block 0
        let s = d.stats();
        assert!(s.writebacks >= 1);
        // Evicted data must be durable.
        assert_eq!(d.read_block(0).unwrap()[0], 1);
    }

    #[test]
    fn drop_caches_preserves_data() {
        let d = small_cache(8);
        d.write_block(3, &[42u8; 512]).unwrap();
        d.drop_caches();
        assert_eq!(d.stats().resident_pages, 0);
        assert_eq!(d.read_block(3).unwrap()[0], 42);
        // That read was a device read.
        assert!(d.stats().device_reads >= 1);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let d = small_cache(2);
        d.read_block(0).unwrap();
        d.read_block(1).unwrap();
        d.read_block(0).unwrap(); // block 0 hot
        d.read_block(2).unwrap(); // evicts block 1
        d.reset_stats();
        d.read_block(0).unwrap();
        assert_eq!(d.stats().cache_hits, 1);
        d.read_block(1).unwrap();
        assert_eq!(d.stats().cache_misses, 1);
    }

    #[test]
    fn zero_capacity_cache_bypasses() {
        let d = small_cache(0);
        d.write_block(0, &[5u8; 512]).unwrap();
        d.read_block(0).unwrap();
        let s = d.stats();
        assert_eq!(s.device_writes, 1);
        assert_eq!(s.device_reads, 1);
        assert_eq!(s.resident_pages, 0);
    }

    #[test]
    fn bad_writes_rejected_through_cache() {
        let d = small_cache(4);
        assert!(d.write_block(0, &[0u8; 3]).is_err());
        assert!(d.write_block(5000, &[0u8; 512]).is_err());
    }

    use dc_fault::{FaultKind, FaultPlan, FaultRule, IoOp};
    use std::sync::Arc;

    fn faulty_cache(pages: usize, plan: FaultPlan) -> (CachedDisk, Arc<dc_fault::FaultInjector>) {
        let d = small_cache(pages);
        let inj = Arc::new(plan.build());
        d.attach_fault_injector(inj.clone());
        (d, inj)
    }

    #[test]
    fn transient_read_fault_is_absorbed_by_retry() {
        // Every block faults on first touch and heals after 2 failures;
        // the default 4-attempt policy must absorb that invisibly.
        let (d, inj) = faulty_cache(
            8,
            FaultPlan::new(1).rule(
                FaultRule::new(FaultKind::Transient, 1.0)
                    .on(IoOp::Read)
                    .burst(2)
                    .max_fires(2),
            ),
        );
        inj.arm();
        let data = d.read_block(3).expect("retry must absorb the burst");
        assert_eq!(data.len(), 512);
        let s = d.stats();
        assert_eq!(s.io_retries, 2);
        assert_eq!(s.io_errors, 0);
        assert_eq!(s.faults_injected, 2);
    }

    #[test]
    fn transient_burst_longer_than_budget_surfaces_eio() {
        let (d, inj) = faulty_cache(
            8,
            FaultPlan::new(2).rule(FaultRule::new(FaultKind::Transient, 1.0).burst(100)),
        );
        inj.arm();
        let err = d.read_block(0).unwrap_err();
        assert!(matches!(
            err,
            BlockError::Io {
                transient: true,
                ..
            }
        ));
        let s = d.stats();
        assert_eq!(s.io_retries, 3); // 4 attempts = 3 retries
        assert_eq!(s.io_errors, 1);
        // After healing, the block reads fine and the cache repopulates.
        inj.disarm();
        assert!(d.read_block(0).is_ok());
        assert_eq!(d.stats().resident_pages, 1);
    }

    #[test]
    fn permanent_fault_is_not_retried() {
        let (d, inj) = faulty_cache(8, FaultPlan::new(3).permanent(IoOp::Read, 1.0));
        inj.arm();
        let err = d.read_block(9).unwrap_err();
        assert!(matches!(
            err,
            BlockError::Io {
                transient: false,
                ..
            }
        ));
        let s = d.stats();
        assert_eq!(s.io_retries, 0);
        assert_eq!(s.io_errors, 1);
    }

    #[test]
    fn short_read_is_detected_and_retried() {
        let (d, inj) = faulty_cache(
            8,
            FaultPlan::new(4).rule(FaultRule::new(FaultKind::ShortRead, 1.0).max_fires(1)),
        );
        d.write_block(5, &[7u8; 512]).unwrap();
        d.sync().unwrap();
        d.drop_caches();
        inj.arm();
        let data = d.read_block(5).expect("torn read must be retried");
        assert_eq!(data.len(), 512);
        assert_eq!(data[0], 7);
        assert_eq!(d.stats().io_retries, 1);
    }

    #[test]
    fn latency_spike_charges_but_succeeds() {
        let (d, inj) = faulty_cache(8, FaultPlan::new(5).latency_spike(IoOp::Read, 1.0, 123_456));
        inj.arm();
        assert!(d.read_block(2).is_ok());
        assert!(d.stats().simulated_io_ns >= 123_456);
        assert_eq!(d.stats().io_retries, 0);
    }

    #[test]
    fn drop_caches_retains_dirty_pages_when_device_is_broken() {
        let (d, inj) = faulty_cache(
            8,
            // Burst far beyond the retry budget: every attempt in the
            // writeback's retry chain fails (the injector's cooldown
            // guarantee only kicks in once a burst drains).
            FaultPlan::new(6).rule(
                FaultRule::new(FaultKind::Transient, 1.0)
                    .on(IoOp::Write)
                    .burst(64),
            ),
        );
        d.write_block(1, &[42u8; 512]).unwrap();
        inj.arm();
        // Writeback fails even after retries; the page must survive.
        d.drop_caches();
        assert_eq!(d.stats().resident_pages, 1);
        assert_eq!(d.read_block(1).unwrap()[0], 42);
        // Device heals: the retained page flushes and drops cleanly.
        inj.disarm();
        d.drop_caches();
        assert_eq!(d.stats().resident_pages, 0);
        assert_eq!(d.read_block(1).unwrap()[0], 42);
    }

    #[test]
    fn sync_is_best_effort_and_keeps_failed_pages_dirty() {
        let (d, inj) = faulty_cache(
            8,
            FaultPlan::new(7).rule(
                FaultRule::new(FaultKind::Transient, 1.0)
                    .on(IoOp::Write)
                    .blocks(1..2)
                    .burst(64),
            ),
        );
        d.write_block(0, &[1u8; 512]).unwrap();
        d.write_block(1, &[2u8; 512]).unwrap();
        inj.arm();
        // Block 1 cannot flush; block 0 must still make it to the device.
        assert!(d.sync().is_err());
        assert_eq!(d.stats().device_writes, 1);
        inj.disarm();
        // The failed page stayed dirty, so a later sync completes it.
        d.sync().unwrap();
        assert_eq!(d.stats().device_writes, 2);
    }
}
