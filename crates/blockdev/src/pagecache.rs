//! Write-back page cache in front of the raw device.

use crate::device::{BlockResult, DiskConfig, RawDisk};
use crate::lru::LruList;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate I/O statistics for a [`CachedDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Page-cache hits.
    pub cache_hits: u64,
    /// Page-cache misses (caused a device read).
    pub cache_misses: u64,
    /// Reads that reached the device.
    pub device_reads: u64,
    /// Writes that reached the device.
    pub device_writes: u64,
    /// Dirty pages written back due to eviction pressure.
    pub writebacks: u64,
    /// Simulated device time, nanoseconds.
    pub simulated_io_ns: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
}

struct Page {
    data: Bytes,
    dirty: bool,
    /// Slab slot in the LRU list.
    slot: usize,
}

struct CacheInner {
    pages: HashMap<u64, Page>,
    /// Maps LRU slab slots back to block numbers.
    slot_to_block: Vec<u64>,
    free_slots: Vec<usize>,
    lru: LruList,
}

impl CacheInner {
    fn alloc_slot(&mut self, block: u64) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            self.slot_to_block[slot] = block;
            slot
        } else {
            self.slot_to_block.push(block);
            self.slot_to_block.len() - 1
        }
    }
}

/// A write-back LRU page cache over a [`RawDisk`].
///
/// This is the substrate analog of the Linux buffer/page cache: dcache
/// misses that reach the low-level file system first consult this cache,
/// so a *warm-cache* miss pays deserialization but no device latency, while
/// a *cold-cache* miss (after [`CachedDisk::drop_caches`]) pays both —
/// the two miss tiers of §5 of the paper.
pub struct CachedDisk {
    disk: RawDisk,
    capacity_pages: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
}

impl CachedDisk {
    /// The device's latency model (for hit-cost accounting queries).
    pub fn latency(&self) -> &crate::LatencyModel {
        self.disk.latency()
    }

    /// Attaches an observability recorder to the underlying device;
    /// reads and writes that reach it (i.e. page-cache misses and
    /// writebacks) report `BlockIo` spans from then on.
    pub fn attach_recorder(&self, obs: dc_obs::Recorder) {
        self.disk.attach_recorder(obs);
    }

    /// Creates a cached disk per `config`.
    pub fn new(config: DiskConfig) -> Self {
        let DiskConfig {
            block_size,
            capacity_blocks,
            latency,
            cache_pages,
        } = config;
        CachedDisk {
            disk: RawDisk::new(block_size, capacity_blocks, latency),
            capacity_pages: cache_pages,
            inner: Mutex::new(CacheInner {
                pages: HashMap::new(),
                slot_to_block: Vec::new(),
                free_slots: Vec::new(),
                lru: LruList::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.disk.block_size()
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.disk.capacity_blocks()
    }

    /// Reads one block through the cache.
    pub fn read_block(&self, block: u64) -> BlockResult<Bytes> {
        if self.capacity_pages == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.disk.read_block(block);
        }
        {
            let mut inner = self.inner.lock();
            if let Some(page) = inner.pages.get(&block) {
                let slot = page.slot;
                let data = page.data.clone();
                inner.lru.touch(slot);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk.latency().charge_hit();
                return Ok(data);
            }
        }
        // Miss: read from the device outside the cache lock so that a
        // spinning latency model does not serialize unrelated hits.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = self.disk.read_block(block)?;
        let mut inner = self.inner.lock();
        // A racing reader may have inserted it meanwhile; keep theirs.
        if !inner.pages.contains_key(&block) {
            self.insert_locked(&mut inner, block, data.clone(), false)?;
        }
        Ok(data)
    }

    /// Writes one block through the cache (write-back: device copy deferred
    /// until [`CachedDisk::sync`], eviction, or [`CachedDisk::drop_caches`]).
    pub fn write_block(&self, block: u64, data: &[u8]) -> BlockResult<()> {
        if block >= self.disk.capacity_blocks() {
            // Surface range errors eagerly even in write-back mode.
            return self.disk.write_block(block, data);
        }
        if data.len() != self.disk.block_size() {
            return Err(crate::BlockError::BadLength {
                got: data.len(),
                want: self.disk.block_size(),
            });
        }
        if self.capacity_pages == 0 {
            return self.disk.write_block(block, data);
        }
        let bytes = Bytes::copy_from_slice(data);
        let mut inner = self.inner.lock();
        if let Some(page) = inner.pages.get_mut(&block) {
            page.data = bytes;
            page.dirty = true;
            let slot = page.slot;
            inner.lru.touch(slot);
            return Ok(());
        }
        self.insert_locked(&mut inner, block, bytes, true)
    }

    fn insert_locked(
        &self,
        inner: &mut CacheInner,
        block: u64,
        data: Bytes,
        dirty: bool,
    ) -> BlockResult<()> {
        while inner.pages.len() >= self.capacity_pages {
            let Some(victim_slot) = inner.lru.pop_lru() else {
                break;
            };
            let victim_block = inner.slot_to_block[victim_slot];
            if let Some(victim) = inner.pages.remove(&victim_block) {
                inner.free_slots.push(victim_slot);
                if victim.dirty {
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                    self.disk.write_block(victim_block, &victim.data)?;
                }
            }
        }
        let slot = inner.alloc_slot(block);
        inner.pages.insert(block, Page { data, dirty, slot });
        inner.lru.push_front(slot);
        Ok(())
    }

    /// Writes all dirty pages back to the device.
    pub fn sync(&self) -> BlockResult<()> {
        let mut inner = self.inner.lock();
        // Collect first: writing under iteration would alias the map borrow.
        let dirty: Vec<(u64, Bytes)> = inner
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&b, p)| (b, p.data.clone()))
            .collect();
        for (block, data) in &dirty {
            self.disk.write_block(*block, data)?;
        }
        for (block, _) in dirty {
            if let Some(p) = inner.pages.get_mut(&block) {
                p.dirty = false;
            }
        }
        Ok(())
    }

    /// Flushes and discards every resident page (the `echo 3 >
    /// /proc/sys/vm/drop_caches` analog used for cold-cache runs).
    pub fn drop_caches(&self) {
        self.sync().expect("sync during drop_caches");
        let mut inner = self.inner.lock();
        inner.pages.clear();
        inner.lru.clear();
        inner.free_slots.clear();
        inner.slot_to_block.clear();
    }

    /// Resets hit/miss and device statistics (residency is unaffected).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.disk.reset_counters();
        self.disk.latency().reset_accounting();
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            device_reads: self.disk.reads(),
            device_writes: self.disk.writes(),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            simulated_io_ns: self.disk.latency().accounted_ns(),
            resident_pages: self.inner.lock().pages.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;

    fn small_cache(pages: usize) -> CachedDisk {
        CachedDisk::new(DiskConfig {
            block_size: 512,
            capacity_blocks: 1024,
            latency: LatencyModel::free(),
            cache_pages: pages,
        })
    }

    #[test]
    fn read_hits_after_first_miss() {
        let d = small_cache(8);
        d.read_block(5).unwrap();
        d.read_block(5).unwrap();
        let s = d.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.device_reads, 1);
    }

    #[test]
    fn writes_are_write_back() {
        let d = small_cache(8);
        d.write_block(1, &[9u8; 512]).unwrap();
        assert_eq!(d.stats().device_writes, 0);
        d.sync().unwrap();
        assert_eq!(d.stats().device_writes, 1);
        // Second sync writes nothing new.
        d.sync().unwrap();
        assert_eq!(d.stats().device_writes, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let d = small_cache(2);
        d.write_block(0, &[1u8; 512]).unwrap();
        d.write_block(1, &[2u8; 512]).unwrap();
        d.write_block(2, &[3u8; 512]).unwrap(); // evicts block 0
        let s = d.stats();
        assert!(s.writebacks >= 1);
        // Evicted data must be durable.
        assert_eq!(d.read_block(0).unwrap()[0], 1);
    }

    #[test]
    fn drop_caches_preserves_data() {
        let d = small_cache(8);
        d.write_block(3, &[42u8; 512]).unwrap();
        d.drop_caches();
        assert_eq!(d.stats().resident_pages, 0);
        assert_eq!(d.read_block(3).unwrap()[0], 42);
        // That read was a device read.
        assert!(d.stats().device_reads >= 1);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let d = small_cache(2);
        d.read_block(0).unwrap();
        d.read_block(1).unwrap();
        d.read_block(0).unwrap(); // block 0 hot
        d.read_block(2).unwrap(); // evicts block 1
        d.reset_stats();
        d.read_block(0).unwrap();
        assert_eq!(d.stats().cache_hits, 1);
        d.read_block(1).unwrap();
        assert_eq!(d.stats().cache_misses, 1);
    }

    #[test]
    fn zero_capacity_cache_bypasses() {
        let d = small_cache(0);
        d.write_block(0, &[5u8; 512]).unwrap();
        d.read_block(0).unwrap();
        let s = d.stats();
        assert_eq!(s.device_writes, 1);
        assert_eq!(s.device_reads, 1);
        assert_eq!(s.resident_pages, 0);
    }

    #[test]
    fn bad_writes_rejected_through_cache() {
        let d = small_cache(4);
        assert!(d.write_block(0, &[0u8; 3]).is_err());
        assert!(d.write_block(5000, &[0u8; 512]).is_err());
    }
}
