//! Simulated block storage substrate for the directory-cache reproduction.
//!
//! The paper's evaluation runs on ext4 over a 7200 RPM disk with the Linux
//! page cache in between. A directory-cache *miss* therefore has two cost
//! tiers (§5): at best the on-disk metadata is still in the page cache but
//! must be re-parsed; at worst the request blocks on device I/O.
//!
//! This crate reproduces that substrate in user space:
//!
//! - [`RawDisk`] — a sector store with a configurable [`LatencyModel`] that
//!   charges (and optionally really spins for) per-access device latency.
//! - [`CachedDisk`] — a write-back page cache with LRU replacement in front
//!   of a [`RawDisk`], plus a `drop_caches` hook used by the cold-cache
//!   experiments (Table 2).
//!
//! The file systems in `dc-fs` serialize their metadata into these blocks,
//! so a dcache miss pays genuine deserialization work even when the page
//! cache is warm — exactly the cost structure the paper's hit-rate
//! optimizations exploit.
//!
//! # Examples
//!
//! ```
//! use dc_blockdev::{CachedDisk, DiskConfig};
//!
//! let disk = CachedDisk::new(DiskConfig::default());
//! let mut block = vec![0u8; disk.block_size()];
//! block[0] = 0xAB;
//! disk.write_block(7, &block).unwrap();
//! assert_eq!(disk.read_block(7).unwrap()[0], 0xAB);
//!
//! disk.sync().unwrap();
//! disk.drop_caches();
//! // Still readable — now served from the "device".
//! assert_eq!(disk.read_block(7).unwrap()[0], 0xAB);
//! assert!(disk.stats().device_reads > 0);
//! ```

mod crash;
mod device;
mod latency;
mod lru;
mod pagecache;

pub use crash::{CrashImage, CrashMonitor};
pub use device::{BlockError, BlockResult, DiskConfig, RawDisk};
pub use latency::LatencyModel;
pub use pagecache::{CachedDisk, DiskStats, SyncOutcome};

/// Default block size, matching the paper's 4096-byte ext4 configuration.
pub const BLOCK_SIZE: usize = 4096;
