//! Power-cut surface: deterministic crash-point capture on the device
//! write stream.
//!
//! A [`CrashMonitor`] attaches to a [`RawDisk`](crate::RawDisk) and
//! watches the stream of *flushed* writes (writes that actually reach
//! the device — page-cache residency is invisible here, which is the
//! point: a power cut loses exactly what the cache never flushed). At
//! each scheduled write ordinal it captures a [`CrashImage`]: a snapshot
//! of the raw block contents at that instant, optionally with the
//! in-flight write *torn* (half old bytes, half new — the classic
//! interrupted-sector failure the journal's checksummed commit record
//! must detect).
//!
//! Snapshots are cheap: the device stores blocks as refcounted
//! [`Bytes`], so cloning the map shares every payload. A 200-point
//! campaign costs ~200 map clones, not 200 disk copies.
//!
//! Crash-point enumeration is deterministic: [`CrashMonitor::sample`]
//! draws `count` distinct write ordinals from a seeded splitmix64
//! stream, so `repro crash --seed N` replays the exact same cut points
//! every run.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// splitmix64, kept local so the crash surface works without threading
/// the fault crate's (private) generator through the device.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The durable state of the device at one power-cut instant.
///
/// Everything the machine would find on disk after the plug was pulled:
/// flushed blocks only, with the single in-flight write optionally torn.
/// Rehydrate with [`CachedDisk::from_image`](crate::CachedDisk::from_image)
/// to remount and inspect.
pub struct CrashImage {
    /// 1-based ordinal of the flushed write at which power was cut
    /// (counted from the monitor's arming).
    pub cut_at_write: u64,
    /// Block whose in-flight write was torn by the cut, if any. The
    /// snapshot holds the first half of the new data and the second
    /// half of the old — a write the device acknowledged never started.
    pub torn_block: Option<u64>,
    pub(crate) block_size: usize,
    pub(crate) capacity_blocks: u64,
    pub(crate) blocks: HashMap<u64, Bytes>,
}

impl CrashImage {
    /// Device block size captured in this image.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Device capacity captured in this image.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Number of blocks that had ever been flushed at the cut.
    pub fn written_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// XORs one byte of the captured image at (`block`, `offset`) with
    /// `mask` — the corruption-campaign primitive: bit rot injected
    /// *after* the power cut, before remount. A block the cut never
    /// flushed is materialized as zeros first (it reads as zeros either
    /// way, so the flip is still visible to the mounter). A zero `mask`
    /// is forced to `0x01` so every call really corrupts. Returns
    /// `false` (and changes nothing) when the target is out of range.
    pub fn corrupt_byte(&mut self, block: u64, offset: usize, mask: u8) -> bool {
        if block >= self.capacity_blocks || offset >= self.block_size {
            return false;
        }
        let mut data = self
            .blocks
            .get(&block)
            .map(|b| b.to_vec())
            .unwrap_or_else(|| vec![0u8; self.block_size]);
        data[offset] ^= if mask == 0 { 0x01 } else { mask };
        self.blocks.insert(block, Bytes::from(data));
        true
    }
}

impl std::fmt::Debug for CrashImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashImage")
            .field("cut_at_write", &self.cut_at_write)
            .field("torn_block", &self.torn_block)
            .field("written_blocks", &self.blocks.len())
            .finish()
    }
}

struct MonState {
    /// Remaining cut ordinals, ascending; consumed front to back.
    points: Vec<u64>,
    next: usize,
    rng: SplitMix64,
    tear_prob: f64,
    images: Vec<CrashImage>,
}

/// Decision for one flushed write, made under the device's block lock.
pub(crate) struct CutDecision {
    pub(crate) ordinal: u64,
    pub(crate) torn: bool,
}

/// Watches a device's flushed-write stream and snapshots the raw image
/// at seeded cut points. Attach with
/// [`RawDisk::attach_crash_monitor`](crate::RawDisk::attach_crash_monitor);
/// disarmed it costs one atomic load per write.
pub struct CrashMonitor {
    armed: AtomicBool,
    writes: AtomicU64,
    state: Mutex<MonState>,
}

impl CrashMonitor {
    /// A monitor that cuts power at exactly the given write ordinals
    /// (1-based, counted from arming). Tearing of the in-flight write
    /// is decided per cut point from `tear_seed` with probability
    /// `tear_prob`.
    pub fn at_points(mut points: Vec<u64>, tear_seed: u64, tear_prob: f64) -> CrashMonitor {
        points.sort_unstable();
        points.dedup();
        points.retain(|&p| p > 0);
        CrashMonitor {
            armed: AtomicBool::new(false),
            writes: AtomicU64::new(0),
            state: Mutex::new(MonState {
                points,
                next: 0,
                rng: SplitMix64::new(tear_seed),
                tear_prob,
                images: Vec::new(),
            }),
        }
    }

    /// Samples `count` distinct cut ordinals uniformly from
    /// `1..=total_writes` using a seeded stream — the deterministic
    /// crash-point enumeration behind `repro crash --seed N`.
    ///
    /// There are only `total_writes` ordinals to draw from, so `count`
    /// is clamped to it; the monitor always schedules exactly
    /// `min(count, total_writes)` points. Campaigns should check
    /// [`CrashMonitor::scheduled`] and report when the achieved count
    /// falls short of the requested one.
    pub fn sample(seed: u64, total_writes: u64, count: usize, tear_prob: f64) -> CrashMonitor {
        let mut rng = SplitMix64::new(seed);
        let count = (count as u64).min(total_writes);
        let mut points: Vec<u64> = Vec::with_capacity(count as usize);
        // Floyd's sampling: exactly `count` distinct ordinals in
        // `count` draws — no rejection loop that can fall short when
        // `count` approaches `total_writes`.
        for j in (total_writes - count + 1)..=total_writes {
            let p = 1 + rng.next_u64() % j;
            if points.contains(&p) {
                points.push(j);
            } else {
                points.push(p);
            }
        }
        Self::at_points(points, seed ^ 0x7EA2_B10C, tear_prob)
    }

    /// Starts counting writes and cutting at scheduled points.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stops cutting (captured images are retained).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Flushed writes seen while armed.
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Cut ordinals scheduled (including already-fired ones).
    pub fn scheduled(&self) -> Vec<u64> {
        self.state.lock().points.clone()
    }

    /// Images captured so far.
    pub fn images_captured(&self) -> usize {
        self.state.lock().images.len()
    }

    /// Drains the captured images, oldest first.
    pub fn take_images(&self) -> Vec<CrashImage> {
        std::mem::take(&mut self.state.lock().images)
    }

    /// Called by the device for every flushed write (under its block
    /// lock). Returns a cut decision when this write is a scheduled
    /// crash point.
    pub(crate) fn note_write(&self) -> Option<CutDecision> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let ordinal = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let mut st = self.state.lock();
        // Skip points the counter has already passed (e.g. scheduled
        // before arming was toggled off and on).
        while st.next < st.points.len() && st.points[st.next] < ordinal {
            st.next += 1;
        }
        if st.next < st.points.len() && st.points[st.next] == ordinal {
            st.next += 1;
            let torn = st.rng.next_f64() < st.tear_prob;
            return Some(CutDecision { ordinal, torn });
        }
        None
    }

    /// Called by the device to store a captured image.
    pub(crate) fn store(&self, image: CrashImage) {
        self.state.lock().images.push(image);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic_and_distinct() {
        let a = CrashMonitor::sample(42, 10_000, 200, 0.25);
        let b = CrashMonitor::sample(42, 10_000, 200, 0.25);
        assert_eq!(a.scheduled(), b.scheduled());
        let pts = a.scheduled();
        assert_eq!(pts.len(), 200);
        let mut dedup = pts.clone();
        dedup.dedup();
        assert_eq!(dedup, pts, "points sorted and distinct");
        assert!(pts.iter().all(|&p| (1..=10_000).contains(&p)));
        let c = CrashMonitor::sample(43, 10_000, 200, 0.25);
        assert_ne!(a.scheduled(), c.scheduled());
    }

    #[test]
    fn sample_clamps_to_available_ordinals() {
        // Fewer flushed writes than requested cuts: every ordinal is
        // scheduled, none invented, and the shortfall is visible via
        // scheduled().len().
        let m = CrashMonitor::sample(7, 5, 200, 0.0);
        assert_eq!(m.scheduled(), vec![1, 2, 3, 4, 5]);
        let none = CrashMonitor::sample(7, 0, 200, 0.0);
        assert!(none.scheduled().is_empty());
    }

    #[test]
    fn sample_exact_count_near_boundary() {
        // count == total_writes is the case rejection sampling could
        // starve on; Floyd's must deliver the full permutation.
        let m = CrashMonitor::sample(11, 200, 200, 0.0);
        assert_eq!(m.scheduled(), (1..=200).collect::<Vec<u64>>());
    }

    #[test]
    fn disarmed_monitor_counts_nothing() {
        let m = CrashMonitor::at_points(vec![1, 2, 3], 0, 0.0);
        assert!(m.note_write().is_none());
        assert_eq!(m.writes_seen(), 0);
        m.arm();
        assert!(m.note_write().is_some());
        assert_eq!(m.writes_seen(), 1);
    }

    #[test]
    fn cut_fires_exactly_at_scheduled_ordinals() {
        let m = CrashMonitor::at_points(vec![2, 5], 7, 0.0);
        m.arm();
        let fired: Vec<u64> = (1..=6)
            .filter_map(|_| m.note_write().map(|d| d.ordinal))
            .collect();
        assert_eq!(fired, vec![2, 5]);
    }

    #[test]
    fn corrupt_byte_flips_materializes_and_bounds_checks() {
        let mut img = CrashImage {
            cut_at_write: 1,
            torn_block: None,
            block_size: 8,
            capacity_blocks: 2,
            blocks: HashMap::new(),
        };
        // Never-flushed block materializes as zeros with the flip applied.
        assert!(img.corrupt_byte(0, 3, 0xA5));
        assert_eq!(img.blocks[&0][3], 0xA5);
        assert_eq!(img.blocks[&0][0], 0);
        // Zero mask still corrupts.
        assert!(img.corrupt_byte(0, 3, 0));
        assert_eq!(img.blocks[&0][3], 0xA4);
        // Out-of-range targets are refused.
        assert!(!img.corrupt_byte(2, 0, 1));
        assert!(!img.corrupt_byte(0, 8, 1));
        assert_eq!(img.written_blocks(), 1);
    }

    #[test]
    fn tear_prob_one_always_tears() {
        let m = CrashMonitor::at_points(vec![1], 9, 1.0);
        m.arm();
        assert!(m.note_write().unwrap().torn);
    }
}
