//! A small intrusive LRU list over a slab of nodes.
//!
//! Used by the page cache to order resident pages by recency without
//! per-access allocation. Nodes are identified by slab index; the caller
//! maps its keys to indices.

/// Sentinel for "no node".
pub(crate) const NIL: usize = usize::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    prev: usize,
    next: usize,
    in_list: bool,
}

/// Doubly-linked LRU order over externally-allocated slots.
///
/// Head = most recently used, tail = least recently used.
#[derive(Debug)]
pub(crate) struct LruList {
    nodes: Vec<Node>,
    head: usize,
    tail: usize,
    len: usize,
}

impl LruList {
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Ensures slot `idx` exists in the slab (not in the list yet).
    fn ensure(&mut self, idx: usize) {
        if idx >= self.nodes.len() {
            self.nodes.resize(
                idx + 1,
                Node {
                    prev: NIL,
                    next: NIL,
                    in_list: false,
                },
            );
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Pushes `idx` at the most-recently-used end. Must not be in the list.
    pub fn push_front(&mut self, idx: usize) {
        self.ensure(idx);
        debug_assert!(!self.nodes[idx].in_list, "double insert into LRU");
        let old_head = self.head;
        self.nodes[idx] = Node {
            prev: NIL,
            next: old_head,
            in_list: true,
        };
        if old_head != NIL {
            self.nodes[old_head].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
    }

    /// Removes `idx` from the list if present.
    pub fn remove(&mut self, idx: usize) {
        if idx >= self.nodes.len() || !self.nodes[idx].in_list {
            return;
        }
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].in_list = false;
        self.len -= 1;
    }

    /// Moves `idx` to the most-recently-used end (inserting if absent).
    pub fn touch(&mut self, idx: usize) {
        self.remove(idx);
        self.push_front(idx);
    }

    /// Pops the least-recently-used slot, if any.
    pub fn pop_lru(&mut self) -> Option<usize> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.remove(idx);
        Some(idx)
    }

    /// Clears the list (slab slots remain allocated).
    pub fn clear(&mut self) {
        while self.pop_lru().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_lru() {
        let mut l = LruList::new();
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new();
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.touch(0); // 0 becomes MRU
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(0));
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new();
        for i in 0..5 {
            l.push_front(i);
        }
        l.remove(2);
        assert_eq!(l.len(), 4);
        let order: Vec<_> = std::iter::from_fn(|| l.pop_lru()).collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut l = LruList::new();
        l.push_front(3);
        l.remove(100);
        l.remove(3);
        l.remove(3);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut l = LruList::new();
        for i in 0..10 {
            l.push_front(i);
        }
        l.clear();
        assert_eq!(l.len(), 0);
        assert_eq!(l.pop_lru(), None);
        // Reusable after clear.
        l.push_front(4);
        assert_eq!(l.pop_lru(), Some(4));
    }
}
