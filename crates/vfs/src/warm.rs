//! Warm restart: checkpointing the directory cache into the memfs's
//! warm-index region, and rehydrating it after a remount.
//!
//! A node that restarts — crash or planned — normally comes back with an
//! empty dcache and pays a full cold-miss ramp: every path must fault
//! through the slowpath and the backing store before the DLHT fastpath
//! starts hitting. The warm index short-circuits that ramp.
//! [`Kernel::warm_checkpoint`] walks the live dentry tree parents-first
//! and persists one record per positive dentry (inode, parent inode,
//! name, signature, resumable hash state) into journal-protected blocks;
//! [`Kernel::warm_restart`] reads it back after journal replay and
//! republishes the entries so the very first lookups hit the fastpath.
//!
//! # Trust model: validate, recompute, then publish
//!
//! Nothing read from the index is trusted into the cache:
//!
//! - The on-disk load path ([`MemFs::read_warm_index`]) already enforces
//!   header checksums, version, A/B generation choice, payload checksums,
//!   and the journal binding (an index bound past the recovered tail is
//!   rejected wholesale). Any failure is a typed whole-index fallback —
//!   the node boots cold, exactly as if the index did not exist.
//! - Every surviving entry is validated against the **recovered** inode
//!   table: `fs.lookup(parent, name)` must succeed and return the
//!   recorded inode number. Operations that committed after the
//!   checkpoint (rename, unlink, create-over) make the entry stale; it
//!   is skipped, not published. No phantom and no stale dentries.
//! - Signatures and hash states are **recomputed** under the *current*
//!   boot key by resuming from the parent's rehydrated state. The stored
//!   values are only compared for accounting: with a fresh entropy key
//!   (the default) they never match, and trusting them would poison the
//!   DLHT. Because entries are written parents-first and any capacity
//!   truncation drops a suffix, a parent's state is always rehydrated
//!   before its children need it; an entry whose parent was rejected is
//!   rejected too (per-entry fallback), keeping the published set an
//!   exact subset of the recovered tree.
//!
//! [`MemFs::read_warm_index`]: dc_fs::MemFs::read_warm_index

use crate::kernel::{as_memfs, Kernel};
use dc_fs::{FsResult, WarmEntry, WarmLoad, WarmReject};
use dcache_core::{DentryState, HashState};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;

/// Why a warm restart published nothing and the node boots cold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmFallback {
    /// No checkpoint exists on disk (fresh format, or never written).
    Absent,
    /// The index was rejected wholesale: torn payload, corrupt or
    /// wrong-version header, or bound to a journal sequence the disk
    /// never durably reached.
    Rejected(WarmReject),
    /// The root file system has no warm-index region (not a memfs).
    Unsupported,
}

/// What a [`Kernel::warm_restart`] attempt did, entry by entry.
#[derive(Debug, Clone, Default)]
pub struct WarmRestartOutcome {
    /// Index entries examined.
    pub attempted: u64,
    /// Dentries validated against the recovered tree and published into
    /// the dcache and the init namespace's DLHT.
    pub published: u64,
    /// Entries rejected by per-entry validation: the recovered file
    /// system no longer has that (parent, name) → inode binding, or the
    /// entry's parent was itself rejected.
    pub rejected: u64,
    /// Entries whose *stored* signature disagreed with the recomputed
    /// one — expected whenever the boot hash key changed (the entropy
    /// default); purely diagnostic, the recomputed value is published.
    pub sig_mismatches: u64,
    /// Set when the whole index was unusable; `None` means entries were
    /// at least examined (even if each was individually rejected).
    pub fallback: Option<WarmFallback>,
    /// Journal sequence the loaded index was bound to (0 when none).
    pub bound_seq: u64,
}

impl WarmRestartOutcome {
    /// True when the cache starts entirely cold.
    pub fn is_cold(&self) -> bool {
        self.published == 0
    }

    fn fell_back(fallback: WarmFallback) -> WarmRestartOutcome {
        WarmRestartOutcome {
            fallback: Some(fallback),
            ..Default::default()
        }
    }
}

impl Kernel {
    /// Checkpoints the live directory cache into the root memfs's warm
    /// index: journal checkpoint first (so everything the index
    /// references is durable), then one record per positive dentry,
    /// parents before children. Returns the number of entries persisted
    /// (capacity truncation drops deepest-last). `Ok(0)` when the root
    /// file system is not a memfs.
    pub fn warm_checkpoint(&self) -> FsResult<usize> {
        let root_mount = self.init_namespace().root_mount();
        let Some(memfs) = as_memfs(&root_mount.sb.fs) else {
            return Ok(0);
        };
        let key = &self.dcache.key;
        let root = root_mount.sb.root.clone();
        let root_ino = root_mount.sb.fs.root_ino();
        let mut entries: Vec<WarmEntry> = Vec::new();
        let mut queue: VecDeque<(std::sync::Arc<dcache_core::Dentry>, HashState, u64)> =
            VecDeque::new();
        queue.push_back((root, key.root_state(), root_ino));
        while let Some((dir, dir_state, dir_ino)) = queue.pop_front() {
            for child in dir.children_snapshot() {
                if child.is_dead() {
                    continue;
                }
                // Only positive dentries are worth persisting: negatives
                // and partials are cheap to re-learn and cannot be
                // validated against the inode table.
                let Some(inode) = child.inode() else {
                    continue;
                };
                let name = child.name();
                let mut st = dir_state;
                key.push_component(&mut st, name.as_bytes());
                let (acc, pos) = st.to_wire();
                entries.push(WarmEntry {
                    sig: key.finish(&st).to_wire(),
                    ino: inode.ino,
                    parent: dir_ino,
                    state_acc: acc,
                    state_pos: pos,
                    name: name.to_string(),
                });
                if inode.is_dir() {
                    queue.push_back((child, st, inode.ino));
                }
            }
        }
        let kept = memfs.warm_checkpoint(&entries)?;
        self.dcache
            .stats
            .warm_checkpoints
            .fetch_add(1, Ordering::Relaxed);
        Ok(kept)
    }

    /// Rehydrates the dcache and the init namespace's DLHT from the warm
    /// index, after mount-time journal replay. Never panics and never
    /// publishes an entry the recovered file system disagrees with; on
    /// any whole-index problem it returns a typed fallback and the node
    /// simply boots cold. See the [module docs](self) for the trust
    /// model.
    pub fn warm_restart(&self) -> FsResult<WarmRestartOutcome> {
        self.dcache
            .stats
            .warm_restart_attempts
            .fetch_add(1, Ordering::Relaxed);
        let outcome = self.warm_restart_inner()?;
        self.dcache
            .stats
            .warm_restart_published
            .fetch_add(outcome.published, Ordering::Relaxed);
        self.dcache
            .stats
            .warm_restart_rejected
            .fetch_add(outcome.rejected, Ordering::Relaxed);
        if outcome.fallback.is_some() {
            self.dcache
                .stats
                .warm_restart_fallbacks
                .fetch_add(1, Ordering::Relaxed);
        }
        self.dcache.obs.event(|| dc_obs::TraceEvent::WarmRestart {
            published: outcome.published as u32,
            rejected: outcome.rejected as u32,
            fallback: outcome.fallback.is_some(),
        });
        Ok(outcome)
    }

    fn warm_restart_inner(&self) -> FsResult<WarmRestartOutcome> {
        let init_ns = self.init_namespace();
        let root_mount = init_ns.root_mount();
        let fs = root_mount.sb.fs.clone();
        let Some(memfs) = as_memfs(&fs) else {
            return Ok(WarmRestartOutcome::fell_back(WarmFallback::Unsupported));
        };
        let (entries, bound_seq) = match memfs.read_warm_index()? {
            WarmLoad::Loaded {
                entries, bound_seq, ..
            } => (entries, bound_seq),
            WarmLoad::Absent => {
                return Ok(WarmRestartOutcome::fell_back(WarmFallback::Absent));
            }
            WarmLoad::Rejected(reject) => {
                return Ok(WarmRestartOutcome::fell_back(WarmFallback::Rejected(
                    reject,
                )));
            }
        };
        let mut outcome = WarmRestartOutcome {
            bound_seq,
            ..Default::default()
        };
        let key = &self.dcache.key;
        let sb_id = root_mount.sb.id;
        let table = init_ns.dlht_handle(&self.dcache).clone();
        let root_ino = fs.root_ino();
        // Rehydrated directories, keyed by inode number: each entry
        // resumes hashing from its parent's recomputed state. Seeded
        // with the root; entries are parents-first, so a missing parent
        // here means the parent itself failed validation (or the index
        // is malformed) — reject the child rather than guess.
        let mut dirs: HashMap<u64, (std::sync::Arc<dcache_core::Dentry>, HashState)> =
            HashMap::new();
        dirs.insert(root_ino, (root_mount.sb.root.clone(), key.root_state()));
        for e in &entries {
            outcome.attempted += 1;
            let Some((parent_dentry, parent_state)) = dirs.get(&e.parent).cloned() else {
                outcome.rejected += 1;
                continue;
            };
            // The recovered inode table is the authority: the binding
            // must still exist and still point at the recorded inode.
            let attr = match fs.lookup(e.parent, &e.name) {
                Ok(attr) if attr.ino == e.ino => attr,
                _ => {
                    outcome.rejected += 1;
                    continue;
                }
            };
            let mut st = parent_state;
            key.push_component(&mut st, e.name.as_bytes());
            let sig = key.finish(&st);
            if sig.to_wire() != e.sig || st.to_wire() != (e.state_acc, e.state_pos) {
                outcome.sig_mismatches += 1;
            }
            let inode = self.icache.get_or_create(sb_id, &fs, attr);
            let is_dir = inode.is_dir();
            let dentry = {
                let _dl = parent_dentry.dir_lock().lock();
                match self.dcache.d_lookup(&parent_dentry, &e.name) {
                    Some(existing) => existing,
                    None => {
                        self.dcache
                            .d_alloc(&parent_dentry, &e.name, DentryState::Positive(inode))
                    }
                }
            };
            dentry.store_hash_state(st);
            dentry.set_mount_hint(root_mount.id);
            self.dcache.dlht_insert_in(&table, sig, &dentry);
            outcome.published += 1;
            if is_dir {
                dirs.insert(e.ino, (dentry, st));
            }
        }
        Ok(outcome)
    }
}
