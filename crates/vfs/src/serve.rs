//! Serve-facing kernel entry points.
//!
//! The metadata server (`dc-server`) executes batches of lookups on
//! behalf of remote clients. These entry points differ from the syscall
//! surface in two ways:
//!
//! - **No per-syscall timing wrapper.** The server owns its own
//!   per-worker latency histograms (per protocol op, including decode
//!   and encode); charging `SyscallTiming` as well would double-count
//!   and cost an extra clock read per request.
//! - **Signature-keyed lookups.** A client that has previously resolved
//!   a path can retry by its 240-bit signature alone
//!   ([`Kernel::lookup_sig`]), skipping parse and hash entirely — the
//!   DLHT probe plus seq validation is the whole request. This is the
//!   serving-tier shape *Fletch* (PAPERS.md) argues for: compact keys
//!   the front-end can verify without walking.
//!
//! Lookup accounting still flows through the standard counters
//! (`stats.lookups`, `LookupStart`/`LookupEnd`, fastpath hit/miss
//! counters) so the events↔stats reconciliation invariants hold for
//! served traffic exactly as for local syscalls.

use crate::kernel::Kernel;
use crate::path::PathRef;
use crate::process::Process;
use dc_fs::{FileType, FsError, FsResult};
use dc_obs::{LookupOutcome, TraceEvent};
use dcache_core::Signature;
use std::sync::atomic::Ordering;

/// A successful served lookup: the identity of the object plus,
/// optionally, its path signature for future signature-keyed lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupReply {
    /// Inode number.
    pub ino: u64,
    /// Object type.
    pub ftype: FileType,
    /// The resolved path's signature, when requested and available
    /// (the dentry carries a resumable hash state).
    pub sig: Option<Signature>,
}

/// Outcome of a signature-keyed lookup ([`Kernel::lookup_sig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigLookup {
    /// The signature validated against a live positive dentry.
    Hit(LookupReply),
    /// Definitive cached answer that the object is absent or otherwise
    /// in error (negative dentry, symlink loop, ...).
    Neg(FsError),
    /// Not answerable from the cache (DLHT miss, PCC miss, seq churn):
    /// the client must retry by path, which repopulates the caches.
    Miss,
}

impl Kernel {
    /// Serves a path lookup: resolves `path` (following symlinks) and
    /// returns the object's identity. With `want_sig`, also returns the
    /// path's signature so the client can switch to
    /// [`lookup_sig`](Kernel::lookup_sig).
    pub fn lookup_path(&self, proc: &Process, path: &str, want_sig: bool) -> FsResult<LookupReply> {
        let r = self.resolve(proc, path, true)?;
        let inode = r.require_inode()?;
        let sig = if want_sig {
            let at = PathRef::new(r.mount.clone(), r.dentry.clone());
            r.dentry
                .hash_state()
                .or_else(|| self.rebuild_hash_state(&at))
                .map(|h| self.dcache.key.finish(&h))
        } else {
            None
        };
        Ok(LookupReply {
            ino: inode.ino,
            ftype: inode.ftype(),
            sig,
        })
    }

    /// Serves a `stat`: full attributes, symlinks followed. Identical to
    /// [`stat`](Kernel::stat) minus the syscall-timing wrapper.
    pub fn stat_path(&self, proc: &Process, path: &str) -> FsResult<dc_fs::InodeAttr> {
        let r = self.resolve(proc, path, true)?;
        Ok(r.require_inode()?.attr())
    }

    /// The signature of `path` for `proc`'s namespace and anchor,
    /// resolving it first so the caches are warm. `NoSys` when the
    /// resolved dentry carries no resumable hash state (fastpath off or
    /// unsupported file system).
    pub fn path_signature(&self, proc: &Process, path: &str) -> FsResult<Signature> {
        self.lookup_path(proc, path, true)?
            .sig
            .ok_or(FsError::NoSys)
    }

    /// Serves a signature-keyed lookup: one DLHT probe plus the full
    /// fastpath validation chain (PCC / revalidation, alias chase,
    /// symlink chaining, seq sandwich) — no parsing, no hashing, no
    /// slowpath. Misses return [`SigLookup::Miss`] rather than walking;
    /// the client retries by path.
    ///
    /// Counts as one lookup in stats and the trace, like any resolve.
    pub fn lookup_sig(&self, proc: &Process, sig: &Signature) -> SigLookup {
        let stats = &self.dcache.stats;
        stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.dcache.obs.event(|| TraceEvent::LookupStart);
        let t0 = self.dcache.obs.now();
        stats.fast_attempts.fetch_add(1, Ordering::Relaxed);

        let out = (|| {
            if !self.dcache.config.fastpath {
                return SigLookup::Miss;
            }
            // Same pin discipline as `fast_resolve`: one pin per lookup,
            // collapsing to a nesting bump (and no per-pin accounting)
            // under a server worker's batch pin.
            let in_batch = dcache_core::batch_pin_active();
            let guard = crossbeam_epoch::pin();
            if !in_batch {
                stats.epoch_pins.fetch_add(1, Ordering::Relaxed);
                self.dcache.obs.event(|| TraceEvent::EpochPin);
            }
            let ns = proc.namespace_read(&guard);
            let cred = proc.cred_read(&guard);
            let pcc_owned;
            let pcc = match self.dcache.pcc_ref(cred, ns.id, &guard) {
                Some(p) => p,
                None => {
                    pcc_owned = self.dcache.pcc_for(cred, ns.id);
                    &pcc_owned
                }
            };
            match self.fast_validate(ns, pcc, cred, sig, true, false, &guard) {
                Some(Ok(r)) => match r.inode {
                    Some(inode) => SigLookup::Hit(LookupReply {
                        ino: inode.ino,
                        ftype: inode.ftype(),
                        sig: Some(*sig),
                    }),
                    None => SigLookup::Miss,
                },
                Some(Err(e)) => SigLookup::Neg(e),
                None => SigLookup::Miss,
            }
        })();

        if let Some(t0) = t0 {
            let outcome = match &out {
                SigLookup::Hit(_) => LookupOutcome::Positive,
                SigLookup::Neg(FsError::NoEnt) | SigLookup::Neg(FsError::NotDir) => {
                    LookupOutcome::Negative
                }
                SigLookup::Neg(_) | SigLookup::Miss => LookupOutcome::Error,
            };
            let ns = t0.elapsed().as_nanos() as u64;
            self.dcache
                .obs
                .event(|| TraceEvent::LookupEnd { outcome, ns });
        }
        out
    }
}
