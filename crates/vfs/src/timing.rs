//! Per-syscall-class wall-clock accounting (the ftrace analog behind
//! Figure 1).

use crate::fastclock;
use dc_obs::{OpClass, Recorder};
use std::sync::atomic::{AtomicU64, Ordering};

/// Syscall classes, matching the Figure 1 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallClass {
    /// `access`, `stat`, `lstat`, `fstatat`.
    AccessStat,
    /// `open`, `openat`, `creat`.
    Open,
    /// `chmod`, `chown`.
    ChmodChown,
    /// `unlink`, `rmdir`.
    Unlink,
    /// `rename`, `link`, `symlink`, `mkdir` — other metadata mutations.
    OtherMeta,
    /// `readdir`/`getdents`.
    Readdir,
    /// Data-plane reads and writes.
    Io,
    /// Everything else.
    Other,
}

/// Index range for the class table.
const NCLASSES: usize = 8;

impl SyscallClass {
    fn idx(self) -> usize {
        match self {
            SyscallClass::AccessStat => 0,
            SyscallClass::Open => 1,
            SyscallClass::ChmodChown => 2,
            SyscallClass::Unlink => 3,
            SyscallClass::OtherMeta => 4,
            SyscallClass::Readdir => 5,
            SyscallClass::Io => 6,
            SyscallClass::Other => 7,
        }
    }

    /// All classes, in table order.
    pub fn all() -> [SyscallClass; NCLASSES] {
        [
            SyscallClass::AccessStat,
            SyscallClass::Open,
            SyscallClass::ChmodChown,
            SyscallClass::Unlink,
            SyscallClass::OtherMeta,
            SyscallClass::Readdir,
            SyscallClass::Io,
            SyscallClass::Other,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SyscallClass::AccessStat => "access/stat",
            SyscallClass::Open => "open",
            SyscallClass::ChmodChown => "chmod/chown",
            SyscallClass::Unlink => "unlink",
            SyscallClass::OtherMeta => "other-meta",
            SyscallClass::Readdir => "readdir",
            SyscallClass::Io => "io",
            SyscallClass::Other => "other",
        }
    }

    /// The observability operation class this syscall class feeds.
    pub fn op_class(self) -> OpClass {
        match self {
            SyscallClass::AccessStat => OpClass::AccessStat,
            SyscallClass::Open => OpClass::Open,
            SyscallClass::ChmodChown => OpClass::ChmodChown,
            SyscallClass::Unlink => OpClass::Unlink,
            SyscallClass::OtherMeta => OpClass::OtherMeta,
            SyscallClass::Readdir => OpClass::Readdir,
            SyscallClass::Io => OpClass::Io,
            SyscallClass::Other => OpClass::Other,
        }
    }
}

/// One class's counters, packed so [`SyscallTiming::record`] dirties a
/// single cache line per call instead of one in a `calls` array and one
/// in a `nanos` array 64 bytes away (§13).
#[derive(Debug, Default)]
#[repr(align(64))]
struct ClassCell {
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// Accumulated `(calls, nanoseconds)` per class.
#[derive(Debug, Default)]
pub struct SyscallTiming {
    cells: [ClassCell; NCLASSES],
    recorder: Recorder,
}

impl SyscallTiming {
    /// Fresh zeroed table.
    pub fn new() -> SyscallTiming {
        SyscallTiming::default()
    }

    /// A table that additionally feeds each sample into `recorder`'s
    /// per-op latency histogram.
    pub fn with_recorder(recorder: Recorder) -> SyscallTiming {
        SyscallTiming {
            recorder,
            ..SyscallTiming::default()
        }
    }

    /// Times `f` under `class` (TSC-based; see [`crate::fastclock`]).
    #[inline]
    pub fn record<T>(&self, class: SyscallClass, f: impl FnOnce() -> T) -> T {
        let t0 = fastclock::now();
        let out = f();
        let dt = fastclock::delta_ns(t0, fastclock::now());
        let cell = &self.cells[class.idx()];
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.nanos.fetch_add(dt, Ordering::Relaxed);
        self.recorder.latency(class.op_class(), dt);
        out
    }

    /// `(calls, total_ns)` for one class.
    pub fn get(&self, class: SyscallClass) -> (u64, u64) {
        let cell = &self.cells[class.idx()];
        (
            cell.calls.load(Ordering::Relaxed),
            cell.nanos.load(Ordering::Relaxed),
        )
    }

    /// Total nanoseconds across the path-based classes (Figure 1's
    /// numerator: access/stat, open, chmod/chown, unlink).
    pub fn path_syscall_ns(&self) -> u64 {
        [
            SyscallClass::AccessStat,
            SyscallClass::Open,
            SyscallClass::ChmodChown,
            SyscallClass::Unlink,
        ]
        .iter()
        .map(|c| self.get(*c).1)
        .sum()
    }

    /// Total nanoseconds across every class.
    pub fn total_ns(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.nanos.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes the table.
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.calls.store(0, Ordering::Relaxed);
            cell.nanos.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let t = SyscallTiming::new();
        let v = t.record(SyscallClass::Open, || 42);
        assert_eq!(v, 42);
        t.record(SyscallClass::Open, || ());
        t.record(SyscallClass::Io, || ());
        let (calls, ns) = t.get(SyscallClass::Open);
        assert_eq!(calls, 2);
        assert!(ns > 0);
        assert_eq!(t.get(SyscallClass::Io).0, 1);
        assert_eq!(t.get(SyscallClass::Unlink).0, 0);
    }

    #[test]
    fn path_syscall_ns_excludes_io() {
        let t = SyscallTiming::new();
        t.record(SyscallClass::AccessStat, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        t.record(SyscallClass::Io, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(t.path_syscall_ns() > 0);
        assert!(t.total_ns() > t.path_syscall_ns());
    }

    #[test]
    fn reset_zeroes() {
        let t = SyscallTiming::new();
        t.record(SyscallClass::Other, || ());
        t.reset();
        assert_eq!(t.total_ns(), 0);
        assert_eq!(t.get(SyscallClass::Other).0, 0);
    }

    #[test]
    fn labels_cover_all() {
        for c in SyscallClass::all() {
            assert!(!c.label().is_empty());
        }
    }
}
