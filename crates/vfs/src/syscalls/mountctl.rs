//! Mounts, bind mounts, umount, and mount namespaces (§4.3).

use crate::kernel::Kernel;
use crate::mount::{Mount, MountFlags, SuperBlock};
use crate::namespace::MountNamespace;
use crate::path::PathRef;
use crate::process::Process;
use crate::timing::SyscallClass;
use dc_fs::{FileSystem, FsError, FsResult};
use std::collections::HashMap;
use std::sync::Arc;

impl Kernel {
    /// Builds (or reuses) the superblock for a file-system instance.
    /// Mounting the *same instance* twice yields the same superblock and
    /// dentry tree — that is what makes mount aliases aliases (§4.3).
    fn superblock_for(&self, fs: &Arc<dyn FileSystem>) -> FsResult<Arc<SuperBlock>> {
        let mut sbs = self.superblocks.lock();
        for (weak_fs, sb) in sbs.iter() {
            if let Some(existing) = weak_fs.upgrade() {
                if Arc::ptr_eq(&existing, fs) {
                    return Ok(sb.clone());
                }
            }
        }
        let id = self.alloc_sb_id();
        let attr = fs.getattr(fs.root_ino())?;
        let inode = self.icache.get_or_create(id, fs, attr);
        let root = self.dcache.new_root(id, inode);
        let sb = Arc::new(SuperBlock {
            id,
            fs: fs.clone(),
            root,
        });
        sbs.push((Arc::downgrade(fs), sb.clone()));
        Ok(sb)
    }

    /// `mount(2)`: grafts `fs` at `path` in the caller's namespace
    /// (root only).
    pub fn mount_fs(
        &self,
        proc: &Process,
        fs: Arc<dyn FileSystem>,
        path: &str,
        flags: MountFlags,
    ) -> FsResult<u64> {
        self.timing.record(SyscallClass::Other, || {
            if proc.cred().uid != 0 {
                return Err(FsError::Perm);
            }
            let ns = proc.namespace();
            let at = self.resolve(proc, path, true)?;
            if !at.require_inode()?.is_dir() {
                return Err(FsError::NotDir);
            }
            let sb = self.superblock_for(&fs)?;
            let sb_root = sb.root.clone();
            let mount = Mount::new_child(
                self.alloc_mount_id(),
                sb,
                // Plain mounts attach at the file-system root; bind
                // mounts pass an interior dentry instead.
                sb_root,
                flags,
                at.mount.clone(),
                at.dentry.clone(),
            );
            // Structural change: the covered subtree's direct-lookup
            // entries are stale (§3.2, §4.3).
            self.dcache.bump_invalidation();
            self.dcache.shoot_subtree(&at.dentry, true);
            mount.root.set_mount_hint(mount.id);
            let id = mount.id;
            ns.add_mount(mount);
            Ok(id)
        })
    }

    /// `mount --bind src dst`: the same dentry tree visible at another
    /// path (a mount alias, §4.3).
    pub fn bind_mount(&self, proc: &Process, src: &str, dst: &str) -> FsResult<u64> {
        self.timing.record(SyscallClass::Other, || {
            if proc.cred().uid != 0 {
                return Err(FsError::Perm);
            }
            let ns = proc.namespace();
            let s = self.resolve(proc, src, true)?;
            if !s.require_inode()?.is_dir() {
                return Err(FsError::NotDir);
            }
            let d = self.resolve(proc, dst, true)?;
            if !d.require_inode()?.is_dir() {
                return Err(FsError::NotDir);
            }
            let mount = Mount::new_child(
                self.alloc_mount_id(),
                s.mount.sb.clone(),
                s.dentry.clone(),
                s.mount.flags,
                d.mount.clone(),
                d.dentry.clone(),
            );
            self.dcache.bump_invalidation();
            self.dcache.shoot_subtree(&d.dentry, true);
            let id = mount.id;
            ns.add_mount(mount);
            Ok(id)
        })
    }

    /// `umount(2)`.
    pub fn umount(&self, proc: &Process, path: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::Other, || {
            if proc.cred().uid != 0 {
                return Err(FsError::Perm);
            }
            let ns = proc.namespace();
            let at = self.resolve(proc, path, true)?;
            // Must be the root of a child mount.
            if !Arc::ptr_eq(&at.dentry, &at.mount.root) || at.mount.parent.is_none() {
                return Err(FsError::Inval);
            }
            // Busy if anything is mounted below it.
            for m in ns.mounts_snapshot() {
                if let Some((pm, _)) = &m.parent {
                    if pm.id == at.mount.id {
                        return Err(FsError::Busy);
                    }
                }
            }
            ns.remove_mount(at.mount.id).ok_or(FsError::Inval)?;
            // The unmounted subtree's direct-lookup entries are stale, and
            // the mountpoint becomes visible again.
            self.dcache.bump_invalidation();
            self.dcache.shoot_subtree(&at.mount.root, true);
            if let Some((_, mp)) = &at.mount.parent {
                mp.bump_seq();
            }
            Ok(())
        })
    }

    /// `unshare(CLONE_NEWNS)`: clones the caller's mount tree into a
    /// fresh namespace with its own DLHT and PCC key (§4.3).
    pub fn unshare_ns(&self, proc: &Process) -> FsResult<Arc<MountNamespace>> {
        self.timing.record(SyscallClass::Other, || {
            let old_ns = proc.namespace();
            let new_id = self.alloc_ns_id();
            let old_root = old_ns.root_mount();
            let new_root =
                Mount::new_root(self.alloc_mount_id(), old_root.sb.clone(), old_root.flags);
            let ns = MountNamespace::new(new_id, new_root.clone());
            // Rebuild the mount tree top-down so parents exist first.
            let mut mapping: HashMap<u64, Arc<Mount>> = HashMap::new();
            mapping.insert(old_root.id, new_root);
            let mut remaining: Vec<Arc<Mount>> = old_ns
                .mounts_snapshot()
                .into_iter()
                .filter(|m| m.parent.is_some())
                .collect();
            while !remaining.is_empty() {
                let before = remaining.len();
                remaining.retain(|m| {
                    let Some((pm, mp)) = m.parent.as_ref() else {
                        return false; // parentless mounts were filtered out
                    };
                    if let Some(new_parent) = mapping.get(&pm.id).cloned() {
                        let cloned = Mount::new_child(
                            self.alloc_mount_id(),
                            m.sb.clone(),
                            m.root.clone(),
                            m.flags,
                            new_parent,
                            mp.clone(),
                        );
                        mapping.insert(m.id, cloned.clone());
                        ns.add_mount(cloned);
                        false
                    } else {
                        true
                    }
                });
                if remaining.len() == before {
                    return Err(FsError::Inval); // orphaned mount (corrupt tree)
                }
            }
            self.register_namespace(ns.clone());
            // Re-anchor the process into the new namespace's mounts.
            let remap = |p: PathRef| -> PathRef {
                match mapping.get(&p.mount.id) {
                    Some(nm) => PathRef::new(nm.clone(), p.dentry),
                    None => p,
                }
            };
            proc.set_root(remap(proc.root()));
            proc.set_cwd(remap(proc.cwd()));
            proc.set_namespace(ns.clone());
            Ok(ns)
        })
    }
}
