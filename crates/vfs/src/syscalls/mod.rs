//! The POSIX-flavored syscall surface, grouped by family.

mod dir;
mod io;
mod meta;
mod mountctl;
mod name;
mod open;
mod stat;

use crate::kernel::Kernel;
use crate::mount::Mount;
use crate::path::WalkResult;
use dc_cred::{Cred, MAY_EXEC, MAY_WRITE};
use dc_fs::{FsError, FsResult, InodeAttr, MODE_STICKY};
use dcache_core::{Dentry, DentryState, Inode, NegKind, FLAG_DIR_COMPLETE};
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl Kernel {
    /// Checks write+search permission on a parent directory and the
    /// mount's read-only flag — the gate for every namespace mutation.
    pub(crate) fn check_dir_mutable(
        &self,
        cred: &Cred,
        parent: &WalkResult,
        path_hint: Option<&str>,
    ) -> FsResult<()> {
        if parent.mount.flags.read_only {
            return Err(FsError::RoFs);
        }
        let inode = parent.require_inode()?;
        // Path-sensitive LSMs fail closed without a path; reconstruct it
        // when the caller did not have one at hand.
        let computed = (path_hint.is_none() && self.security.needs_path()).then(|| {
            self.vfs_path_of(&crate::path::PathRef::new(
                parent.mount.clone(),
                parent.dentry.clone(),
            ))
        });
        self.permission(
            cred,
            inode,
            MAY_WRITE | MAY_EXEC,
            path_hint.or(computed.as_deref()),
        )
    }

    /// Reconstructs a path hint only when some LSM needs one.
    pub(crate) fn path_hint(&self, r: &WalkResult) -> Option<String> {
        self.security.needs_path().then(|| {
            self.vfs_path_of(&crate::path::PathRef::new(
                r.mount.clone(),
                r.dentry.clone(),
            ))
        })
    }

    /// POSIX sticky-bit deletion rule: in a sticky directory only root,
    /// the directory owner, or the entry owner may remove/rename it.
    pub(crate) fn sticky_ok(cred: &Cred, parent: &InodeAttr, target: &InodeAttr) -> bool {
        if parent.mode & MODE_STICKY == 0 {
            return true;
        }
        cred.uid == 0 || cred.uid == target.uid || cred.uid == parent.uid
    }

    /// Single-component lookup under a held `dir_lock`: per-parent cache
    /// probe, completeness short-circuit, then the low-level file system.
    /// Returns a positive or negative dentry.
    pub(crate) fn lookup_one_locked(
        &self,
        mount: &Arc<Mount>,
        parent: &Arc<Dentry>,
        name: &str,
    ) -> FsResult<Arc<Dentry>> {
        // A dying same-name entry (mid-eviction) can briefly coexist with
        // a still-set completeness flag; seeing one disqualifies the
        // completeness short-circuit below so eviction races can never
        // fabricate ENOENT for a file the file system still has.
        let mut dying_hit = false;
        if let Some(c) = self.dcache.d_lookup(parent, name) {
            if !c.is_dead() {
                // The caller holds the dir lock; upgrade partial entries
                // inline.
                let partial_ino = c.with_state(|s| match s {
                    DentryState::Partial { ino, .. } => Some(*ino),
                    _ => None,
                });
                if let Some(ino) = partial_ino {
                    match mount.sb.fs.getattr(ino) {
                        Ok(attr) => {
                            let inode = self.icache.get_or_create(mount.sb.id, &mount.sb.fs, attr);
                            c.set_state(DentryState::Positive(inode));
                        }
                        Err(FsError::NoEnt) => self.dcache.make_negative(&c, NegKind::Enoent),
                        Err(e) => return Err(e),
                    }
                }
                return Ok(c);
            }
            dying_hit = true;
        }
        let fs = &mount.sb.fs;
        let dir_ino = parent.inode().ok_or(FsError::NoEnt)?.ino;
        if !dying_hit && self.dcache.config.dir_completeness && parent.flag(FLAG_DIR_COMPLETE) {
            self.dcache
                .stats
                .complete_neg_avoided
                .fetch_add(1, Ordering::Relaxed);
            if self.negatives_allowed(fs) {
                return Ok(self.dcache.d_alloc(
                    parent,
                    name,
                    DentryState::Negative(NegKind::Enoent),
                ));
            }
            return Err(FsError::NoEnt);
        }
        self.dcache.stats.miss_fs.fetch_add(1, Ordering::Relaxed);
        self.dcache.obs.event(|| dc_obs::TraceEvent::FsMiss);
        match fs.lookup(dir_ino, name) {
            Ok(attr) => {
                let inode = self.icache.get_or_create(mount.sb.id, fs, attr);
                Ok(self
                    .dcache
                    .d_alloc(parent, name, DentryState::Positive(inode)))
            }
            Err(FsError::NoEnt) => {
                if self.negatives_allowed(fs) {
                    Ok(self
                        .dcache
                        .d_alloc(parent, name, DentryState::Negative(NegKind::Enoent)))
                } else {
                    Err(FsError::NoEnt)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Installs a freshly-created object into the dcache: flips an
    /// existing negative dentry positive (evicting stale deep-negative
    /// children, §5.2) or allocates a new child. Caller holds the
    /// parent's `dir_lock`.
    pub(crate) fn instantiate_created(
        &self,
        parent: &Arc<Dentry>,
        existing: Option<Arc<Dentry>>,
        name: &str,
        inode: Arc<Inode>,
    ) -> Arc<Dentry> {
        match existing {
            Some(d) if !d.is_dead() => {
                debug_assert!(d.is_negative());
                for ch in d.children_snapshot() {
                    self.dcache.unhash_subtree(&ch);
                }
                d.clear_link_sig();
                d.set_state(DentryState::Positive(inode));
                // The entry appeared: parent listings change.
                parent.bump_children_version();
                d
            }
            _ => self
                .dcache
                .d_alloc(parent, name, DentryState::Positive(inode)),
        }
    }
}
