//! `stat`, `lstat`, `fstat`, `fstatat`, `access`, `readlink`, `getcwd`.

use crate::kernel::Kernel;
use crate::path::PathRef;
use crate::process::Process;
use crate::timing::SyscallClass;
use dc_cred::{MAY_EXEC, MAY_READ, MAY_WRITE};
use dc_fs::{FileType, FsError, FsResult, InodeAttr};

impl Kernel {
    /// `stat(2)` — follows symlinks.
    pub fn stat(&self, proc: &Process, path: &str) -> FsResult<InodeAttr> {
        self.timing.record(SyscallClass::AccessStat, || {
            let r = self.resolve(proc, path, true)?;
            Ok(r.require_inode()?.attr())
        })
    }

    /// `lstat(2)` — does not follow a final symlink.
    pub fn lstat(&self, proc: &Process, path: &str) -> FsResult<InodeAttr> {
        self.timing.record(SyscallClass::AccessStat, || {
            let r = self.resolve(proc, path, false)?;
            Ok(r.require_inode()?.attr())
        })
    }

    /// `fstat(2)`.
    pub fn fstat(&self, proc: &Process, fd: u32) -> FsResult<InodeAttr> {
        self.timing
            .record(SyscallClass::AccessStat, || Ok(proc.fd(fd)?.inode.attr()))
    }

    /// `fstatat(2)`: relative to `dirfd`, optionally not following the
    /// final symlink (`AT_SYMLINK_NOFOLLOW`).
    pub fn fstatat(
        &self,
        proc: &Process,
        dirfd: u32,
        path: &str,
        nofollow: bool,
    ) -> FsResult<InodeAttr> {
        self.timing.record(SyscallClass::AccessStat, || {
            let base = self.at_base(proc, dirfd)?;
            let r = self.resolve_from(proc, Some(base), path, !nofollow)?;
            Ok(r.require_inode()?.attr())
        })
    }

    /// `access(2)`: `mask` combines [`MAY_READ`]/[`MAY_WRITE`]/[`MAY_EXEC`];
    /// 0 is `F_OK` (existence only).
    pub fn access(&self, proc: &Process, path: &str, mask: u32) -> FsResult<()> {
        self.timing.record(SyscallClass::AccessStat, || {
            let r = self.resolve(proc, path, true)?;
            let inode = r.require_inode()?;
            if mask == 0 {
                return Ok(());
            }
            debug_assert!(mask & !(MAY_READ | MAY_WRITE | MAY_EXEC) == 0);
            if mask & MAY_WRITE != 0 && r.mount.flags.read_only {
                return Err(FsError::RoFs);
            }
            let cred = proc.cred();
            let path_hint = self
                .security
                .needs_path()
                .then(|| self.vfs_path_of(&PathRef::new(r.mount.clone(), r.dentry.clone())));
            self.permission(&cred, inode, mask, path_hint.as_deref())
        })
    }

    /// `readlink(2)`.
    pub fn readlink_path(&self, proc: &Process, path: &str) -> FsResult<String> {
        self.timing.record(SyscallClass::AccessStat, || {
            let r = self.resolve(proc, path, false)?;
            let inode = r.require_inode()?;
            if inode.ftype() != FileType::Symlink {
                return Err(FsError::Inval);
            }
            r.mount.sb.fs.readlink(inode.ino)
        })
    }

    /// `getcwd(3)`.
    pub fn getcwd(&self, proc: &Process) -> String {
        self.vfs_path_of(&proc.cwd())
    }
}
