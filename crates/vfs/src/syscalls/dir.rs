//! `mkdir`, `rmdir`, `readdir`, `chdir`, `chroot`.

use crate::handle::OpenFlags;
use crate::kernel::Kernel;
use crate::path::PathRef;
use crate::process::Process;
use crate::timing::SyscallClass;
use dc_cred::MAY_EXEC;
use dc_fs::{DirEntry, FsError, FsResult};
use dcache_core::{DentryState, NegKind, FLAG_DIR_COMPLETE};
use std::sync::atomic::Ordering;

impl Kernel {
    /// `mkdir(2)`.
    pub fn mkdir(&self, proc: &Process, path: &str, mode: u16) -> FsResult<()> {
        self.timing.record(SyscallClass::OtherMeta, || {
            let pr = match self.resolve_parent(proc, path) {
                Ok(pr) => pr,
                Err(FsError::Busy) => return Err(FsError::Exist), // mkdir "/"
                Err(e) => return Err(e),
            };
            let cred = proc.cred();
            self.check_dir_mutable(&cred, &pr.parent, None)?;
            let parent_d = pr.parent.dentry.clone();
            let mount = pr.parent.mount.clone();
            let _g = parent_d.dir_lock().lock();
            let existing = match self.lookup_one_locked(&mount, &parent_d, &pr.name) {
                Ok(d) if !d.is_negative() => return Err(FsError::Exist),
                Ok(neg) => Some(neg),
                Err(FsError::NoEnt) => None,
                Err(e) => return Err(e),
            };
            let dir_ino = pr.parent.require_inode()?.ino;
            let attr = mount
                .sb
                .fs
                .mkdir(dir_ino, &pr.name, mode & 0o7777, cred.uid, cred.gid)?;
            let inode = self.icache.get_or_create(mount.sb.id, &mount.sb.fs, attr);
            let d = self.instantiate_created(&parent_d, existing, &pr.name, inode);
            // A brand-new directory is trivially complete (§5.1).
            if self.dcache.config.dir_completeness {
                d.set_flag(FLAG_DIR_COMPLETE);
                self.dcache
                    .stats
                    .complete_sets
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })
    }

    /// `mkdirat(2)`.
    pub fn mkdirat(&self, proc: &Process, dirfd: u32, path: &str, mode: u16) -> FsResult<()> {
        let base = self.at_base(proc, dirfd)?;
        self.timing.record(SyscallClass::OtherMeta, || {
            // Reuse mkdir's body via a resolved absolute-ish path walk.
            let pr = self.resolve_parent_from(proc, Some(base), path)?;
            let cred = proc.cred();
            self.check_dir_mutable(&cred, &pr.parent, None)?;
            let parent_d = pr.parent.dentry.clone();
            let mount = pr.parent.mount.clone();
            let _g = parent_d.dir_lock().lock();
            let existing = match self.lookup_one_locked(&mount, &parent_d, &pr.name) {
                Ok(d) if !d.is_negative() => return Err(FsError::Exist),
                Ok(neg) => Some(neg),
                Err(FsError::NoEnt) => None,
                Err(e) => return Err(e),
            };
            let dir_ino = pr.parent.require_inode()?.ino;
            let attr = mount
                .sb
                .fs
                .mkdir(dir_ino, &pr.name, mode & 0o7777, cred.uid, cred.gid)?;
            let inode = self.icache.get_or_create(mount.sb.id, &mount.sb.fs, attr);
            let d = self.instantiate_created(&parent_d, existing, &pr.name, inode);
            if self.dcache.config.dir_completeness {
                d.set_flag(FLAG_DIR_COMPLETE);
                self.dcache
                    .stats
                    .complete_sets
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        })
    }

    /// `rmdir(2)`.
    pub fn rmdir(&self, proc: &Process, path: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::Unlink, || {
            let pr = match self.resolve_parent(proc, path) {
                Ok(pr) => pr,
                Err(FsError::Busy) => return Err(FsError::Busy), // rmdir "/"
                Err(e) => return Err(e),
            };
            let cred = proc.cred();
            self.check_dir_mutable(&cred, &pr.parent, None)?;
            let parent_d = pr.parent.dentry.clone();
            let mount = pr.parent.mount.clone();
            let _g = parent_d.dir_lock().lock();
            let target = self.lookup_one_locked(&mount, &parent_d, &pr.name)?;
            let inode = target.inode().ok_or(FsError::NoEnt)?;
            if !inode.is_dir() {
                return Err(FsError::NotDir);
            }
            if proc.namespace().is_mountpoint(mount.id, target.id()) {
                return Err(FsError::Busy);
            }
            let parent_attr = pr.parent.require_inode()?.attr();
            if !Self::sticky_ok(&cred, &parent_attr, &inode.attr()) {
                return Err(FsError::Perm);
            }
            let dir_ino = parent_attr.ino;
            mount.sb.fs.rmdir(dir_ino, &pr.name)?;
            self.icache.forget(mount.sb.id, inode.ino);
            if self.dcache.config.neg_on_unlink && self.negatives_allowed(&mount.sb.fs) {
                self.dcache.make_negative(&target, NegKind::Enoent);
            } else {
                self.dcache.unhash_subtree(&target);
            }
            Ok(())
        })
    }

    /// `getdents(2)`: reads up to `max` entries from a directory handle.
    ///
    /// The §5.1 machinery lives here: entries returned by the low-level
    /// file system materialize partial dentries; a complete uninterrupted
    /// pass marks the directory `DIR_COMPLETE`; later streams on complete
    /// directories are served from the dcache without any FS call.
    pub fn readdir(&self, proc: &Process, fd: u32, max: usize) -> FsResult<Vec<DirEntry>> {
        self.timing.record(SyscallClass::Readdir, || {
            let h = proc.fd(fd)?;
            if !h.inode.is_dir() {
                return Err(FsError::NotDir);
            }
            let d = &h.dentry;
            let stats = &self.dcache.stats;
            let mut cur = h.dir.lock();
            if cur.eof && cur.snapshot.is_none() {
                return Ok(Vec::new());
            }
            // Cached-directory stream: snapshot once, then paginate.
            if let Some(snap) = &cur.snapshot {
                let snap_len = snap.len();
                let out: Vec<DirEntry> =
                    snap[cur.snapshot_pos..(cur.snapshot_pos + max).min(snap_len)].to_vec();
                cur.snapshot_pos += out.len();
                if cur.snapshot_pos >= snap_len {
                    cur.eof = true;
                    cur.snapshot = None;
                }
                return Ok(out);
            }
            if self.dcache.config.dir_completeness && !cur.started && d.flag(FLAG_DIR_COMPLETE) {
                stats.readdir_cached.fetch_add(1, Ordering::Relaxed);
                // Serve from the per-dentry listing snapshot, rebuilt
                // from the child list only when the directory's contents
                // changed (§5.1: "serviced directly from the dentry's
                // child list").
                let listing = match d.dir_snapshot() {
                    Some(snap) => snap,
                    None => {
                        let version = d.children_version();
                        let mut entries: Vec<DirEntry> = Vec::with_capacity(d.child_count());
                        d.for_each_child(|child| {
                            if child.is_dead() {
                                return;
                            }
                            // One atomic load classifies the child; the
                            // lock-free walk mirrors Linux's child-list
                            // iteration in dcache_readdir.
                            if let Some((ino, ftype)) = child.listing_entry() {
                                entries.push(DirEntry {
                                    name: child.name().to_string(),
                                    ino,
                                    ftype,
                                });
                            }
                        });
                        let snap = std::sync::Arc::new(entries);
                        d.store_dir_snapshot(version, snap.clone());
                        snap
                    }
                };
                cur.started = true;
                let out: Vec<DirEntry> = listing[..max.min(listing.len())].to_vec();
                if out.len() >= listing.len() {
                    cur.eof = true;
                } else {
                    cur.snapshot_pos = out.len();
                    cur.snapshot = Some(listing);
                }
                return Ok(out);
            }
            // Low-level stream.
            stats.readdir_fs.fetch_add(1, Ordering::Relaxed);
            if !cur.started {
                cur.started = true;
                cur.gen_at_start = d.child_evict_gen();
            }
            let mut out = Vec::with_capacity(max.min(256));
            let next = h
                .mount
                .sb
                .fs
                .readdir(h.inode.ino, cur.fs_offset, max, &mut out)?;
            // Materialize partial dentries from the records (§5.1) so the
            // listing work feeds later lookups.
            if self.dcache.config.dir_completeness && !d.is_dead() {
                let _g = d.dir_lock().lock();
                for e in &out {
                    if self.dcache.d_lookup(d, &e.name).is_none() {
                        self.dcache.d_alloc(
                            d,
                            &e.name,
                            DentryState::Partial {
                                ino: e.ino,
                                ftype: e.ftype,
                            },
                        );
                    }
                }
            }
            match next {
                Some(c) => cur.fs_offset = c,
                None => {
                    cur.eof = true;
                    // Completeness: full pass from offset 0, no seek, no
                    // concurrent eviction (§5.1).
                    if self.dcache.config.dir_completeness
                        && !cur.seeked
                        && cur.gen_at_start == d.child_evict_gen()
                        && !d.is_dead()
                    {
                        d.set_flag(FLAG_DIR_COMPLETE);
                        stats.complete_sets.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(out)
        })
    }

    /// Rewinds a directory stream (`lseek(fd, 0)` on a directory). Seeking
    /// voids the stream's completeness evidence (§5.1).
    pub fn rewinddir(&self, proc: &Process, fd: u32) -> FsResult<()> {
        let h = proc.fd(fd)?;
        let mut cur = h.dir.lock();
        cur.fs_offset = 0;
        cur.started = false;
        cur.seeked = true;
        cur.eof = false;
        cur.snapshot = None;
        cur.snapshot_pos = 0;
        Ok(())
    }

    /// Convenience: opens, fully reads, and closes a directory.
    pub fn list_dir(&self, proc: &Process, path: &str) -> FsResult<Vec<DirEntry>> {
        let fd = self.open(proc, path, OpenFlags::directory(), 0)?;
        let mut all = Vec::new();
        loop {
            let batch = self.readdir(proc, fd, 1024)?;
            if batch.is_empty() {
                break;
            }
            all.extend(batch);
        }
        self.close(proc, fd)?;
        Ok(all)
    }

    /// `chdir(2)`.
    pub fn chdir(&self, proc: &Process, path: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::Other, || {
            let r = self.resolve(proc, path, true)?;
            let inode = r.require_inode()?;
            if !inode.is_dir() {
                return Err(FsError::NotDir);
            }
            let cred = proc.cred();
            let hint = self.path_hint(&r);
            self.permission(&cred, inode, MAY_EXEC, hint.as_deref())?;
            proc.set_cwd(PathRef::new(r.mount, r.dentry));
            Ok(())
        })
    }

    /// `fchdir(2)`.
    pub fn fchdir(&self, proc: &Process, fd: u32) -> FsResult<()> {
        self.timing.record(SyscallClass::Other, || {
            let base = self.at_base(proc, fd)?;
            proc.set_cwd(base);
            Ok(())
        })
    }

    /// `chroot(2)` (requires root).
    pub fn chroot(&self, proc: &Process, path: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::Other, || {
            if proc.cred().uid != 0 {
                return Err(FsError::Perm);
            }
            let r = self.resolve(proc, path, true)?;
            if !r.require_inode()?.is_dir() {
                return Err(FsError::NotDir);
            }
            let root = PathRef::new(r.mount, r.dentry);
            proc.set_root(root.clone());
            proc.set_cwd(root);
            Ok(())
        })
    }
}
