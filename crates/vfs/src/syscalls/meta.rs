//! `chmod`, `chown`, `utimes`, `truncate`, `statfs`.

use crate::kernel::Kernel;
use crate::path::WalkResult;
use crate::process::Process;
use crate::timing::SyscallClass;
use dc_cred::MAY_WRITE;
use dc_fs::{FsError, FsResult, SetAttr, StatFs};
use std::sync::atomic::Ordering;

impl Kernel {
    fn resolve_for_meta(&self, proc: &Process, path: &str) -> FsResult<WalkResult> {
        let r = self.resolve(proc, path, true)?;
        if r.mount.flags.read_only {
            return Err(FsError::RoFs);
        }
        Ok(r)
    }

    /// `chmod(2)` — owner or root only. Changing a directory's mode
    /// invalidates memoized prefix checks through its whole cached
    /// subtree (§3.2) — the cost Figure 7 quantifies.
    pub fn chmod(&self, proc: &Process, path: &str, mode: u16) -> FsResult<()> {
        self.timing.record(SyscallClass::ChmodChown, || {
            let r = self.resolve_for_meta(proc, path)?;
            let inode = r.require_inode()?.clone();
            let cred = proc.cred();
            let attr = inode.attr();
            if cred.uid != 0 && cred.uid != attr.uid {
                return Err(FsError::Perm);
            }
            inode.setattr(SetAttr {
                mode: Some(mode & 0o7777),
                ..Default::default()
            })?;
            if inode.is_dir() && self.dcache.config.fastpath {
                // Permission change: version-bump the cached subtree so
                // every memoized prefix check re-validates (§3.2). The
                // DLHT entries stay — the paths didn't move.
                self.dcache.bump_invalidation();
                self.dcache.shoot_subtree(&r.dentry, false);
            }
            Ok(())
        })
    }

    /// `chown(2)` — uid changes require root; gid changes require root
    /// or (for the owner) membership in the target group.
    pub fn chown(
        &self,
        proc: &Process,
        path: &str,
        uid: Option<u32>,
        gid: Option<u32>,
    ) -> FsResult<()> {
        self.timing.record(SyscallClass::ChmodChown, || {
            let r = self.resolve_for_meta(proc, path)?;
            let inode = r.require_inode()?.clone();
            let cred = proc.cred();
            let attr = inode.attr();
            if let Some(u) = uid {
                if cred.uid != 0 && u != attr.uid {
                    return Err(FsError::Perm);
                }
            }
            if let Some(g) = gid {
                if cred.uid != 0 && !(cred.uid == attr.uid && cred.in_group(g)) {
                    return Err(FsError::Perm);
                }
            }
            inode.setattr(SetAttr {
                uid,
                gid,
                ..Default::default()
            })?;
            if inode.is_dir() && self.dcache.config.fastpath {
                self.dcache.bump_invalidation();
                self.dcache.shoot_subtree(&r.dentry, false);
            }
            Ok(())
        })
    }

    /// `utimes(2)`-ish: sets mtime.
    pub fn utimes(&self, proc: &Process, path: &str, mtime: u64) -> FsResult<()> {
        self.timing.record(SyscallClass::OtherMeta, || {
            let r = self.resolve_for_meta(proc, path)?;
            let inode = r.require_inode()?.clone();
            let cred = proc.cred();
            let attr = inode.attr();
            if cred.uid != 0 && cred.uid != attr.uid {
                return Err(FsError::Perm);
            }
            inode.setattr(SetAttr {
                mtime: Some(mtime),
                ..Default::default()
            })?;
            Ok(())
        })
    }

    /// `truncate(2)`.
    pub fn truncate(&self, proc: &Process, path: &str, size: u64) -> FsResult<()> {
        self.timing.record(SyscallClass::Io, || {
            let r = self.resolve_for_meta(proc, path)?;
            let inode = r.require_inode()?.clone();
            if inode.is_dir() {
                return Err(FsError::IsDir);
            }
            let cred = proc.cred();
            let hint = self.path_hint(&r);
            self.permission(&cred, &inode, MAY_WRITE, hint.as_deref())?;
            inode.setattr(SetAttr {
                size: Some(size),
                ..Default::default()
            })?;
            Ok(())
        })
    }

    /// `statfs(2)`.
    pub fn statfs(&self, proc: &Process, path: &str) -> FsResult<StatFs> {
        self.timing.record(SyscallClass::Other, || {
            let r = self.resolve(proc, path, true)?;
            r.mount.sb.fs.statfs()
        })
    }

    /// Counter snapshot helper: the shootdown-visit count (Figure 7's
    /// "children walked" driver).
    pub fn shootdown_visits(&self) -> u64 {
        self.dcache.stats.shootdown_visits.load(Ordering::Relaxed)
    }
}
