//! Data-plane operations on open handles.

use crate::kernel::Kernel;
use crate::process::Process;
use crate::timing::SyscallClass;
use bytes::Bytes;
use dc_fs::{FsError, FsResult};

impl Kernel {
    /// `read(2)`.
    pub fn read_fd(&self, proc: &Process, fd: u32, len: usize) -> FsResult<Bytes> {
        self.timing.record(SyscallClass::Io, || {
            let h = proc.fd(fd)?;
            if !h.flags.read {
                return Err(FsError::BadF);
            }
            let mut pos = h.pos.lock();
            let data = h.mount.sb.fs.read(h.inode.ino, *pos, len)?;
            *pos += data.len() as u64;
            Ok(data)
        })
    }

    /// `pread(2)`.
    pub fn pread(&self, proc: &Process, fd: u32, off: u64, len: usize) -> FsResult<Bytes> {
        self.timing.record(SyscallClass::Io, || {
            let h = proc.fd(fd)?;
            if !h.flags.read {
                return Err(FsError::BadF);
            }
            h.mount.sb.fs.read(h.inode.ino, off, len)
        })
    }

    /// `write(2)`.
    pub fn write_fd(&self, proc: &Process, fd: u32, data: &[u8]) -> FsResult<usize> {
        self.timing.record(SyscallClass::Io, || {
            let h = proc.fd(fd)?;
            if !h.flags.write {
                return Err(FsError::BadF);
            }
            let mut pos = h.pos.lock();
            let off = if h.flags.append {
                h.inode.attr().size
            } else {
                *pos
            };
            let n = h.mount.sb.fs.write(h.inode.ino, off, data)?;
            // Refresh the cached attributes (size/mtime moved).
            if let Ok(attr) = h.mount.sb.fs.getattr(h.inode.ino) {
                h.inode.store_attr(attr);
            }
            *pos = off + n as u64;
            Ok(n)
        })
    }

    /// `pwrite(2)`.
    pub fn pwrite(&self, proc: &Process, fd: u32, off: u64, data: &[u8]) -> FsResult<usize> {
        self.timing.record(SyscallClass::Io, || {
            let h = proc.fd(fd)?;
            if !h.flags.write {
                return Err(FsError::BadF);
            }
            let n = h.mount.sb.fs.write(h.inode.ino, off, data)?;
            if let Ok(attr) = h.mount.sb.fs.getattr(h.inode.ino) {
                h.inode.store_attr(attr);
            }
            Ok(n)
        })
    }

    /// `lseek(2)` (SEEK_SET only; directories reset their stream).
    pub fn lseek(&self, proc: &Process, fd: u32, pos: u64) -> FsResult<u64> {
        self.timing.record(SyscallClass::Other, || {
            let h = proc.fd(fd)?;
            if h.inode.is_dir() {
                if pos != 0 {
                    return Err(FsError::Inval);
                }
                self.rewinddir(proc, fd)?;
                return Ok(0);
            }
            *h.pos.lock() = pos;
            Ok(pos)
        })
    }

    /// `fsync(2)`.
    pub fn fsync(&self, proc: &Process, fd: u32) -> FsResult<()> {
        self.timing.record(SyscallClass::Io, || {
            let h = proc.fd(fd)?;
            h.mount.sb.fs.sync()
        })
    }

    /// `ftruncate(2)`.
    pub fn ftruncate(&self, proc: &Process, fd: u32, size: u64) -> FsResult<()> {
        self.timing.record(SyscallClass::Io, || {
            let h = proc.fd(fd)?;
            if !h.flags.write {
                return Err(FsError::BadF);
            }
            h.inode.setattr(dc_fs::SetAttr {
                size: Some(size),
                ..Default::default()
            })?;
            Ok(())
        })
    }
}
