//! `open`, `openat`, `close`, `mkstemp`.

use crate::handle::{Handle, OpenFlags};
use crate::kernel::Kernel;
use crate::path::{PathRef, WalkResult};
use crate::process::Process;
use crate::timing::SyscallClass;
use dc_cred::{MAY_READ, MAY_WRITE};
use dc_fs::{FileType, FsError, FsResult, SetAttr};
use std::sync::Arc;

/// Nested dangling-symlink creation depth limit.
const CREATE_LINK_DEPTH: u32 = 8;

impl Kernel {
    /// `open(2)`.
    pub fn open(&self, proc: &Process, path: &str, flags: OpenFlags, mode: u16) -> FsResult<u32> {
        self.timing.record(SyscallClass::Open, || {
            let h = self.open_internal(proc, None, path, flags, mode, 0)?;
            proc.install_fd(h)
        })
    }

    /// `openat(2)`.
    pub fn openat(
        &self,
        proc: &Process,
        dirfd: u32,
        path: &str,
        flags: OpenFlags,
        mode: u16,
    ) -> FsResult<u32> {
        self.timing.record(SyscallClass::Open, || {
            let at = self.at_base(proc, dirfd)?;
            let h = self.open_internal(proc, Some(at), path, flags, mode, 0)?;
            proc.install_fd(h)
        })
    }

    /// Resolves a `dirfd` base for the `*at()` family.
    pub(crate) fn at_base(&self, proc: &Process, dirfd: u32) -> FsResult<PathRef> {
        let h = proc.fd(dirfd)?;
        if !h.inode.is_dir() {
            return Err(FsError::NotDir);
        }
        Ok(PathRef::new(h.mount.clone(), h.dentry.clone()))
    }

    fn open_internal(
        &self,
        proc: &Process,
        start: Option<PathRef>,
        path: &str,
        flags: OpenFlags,
        mode: u16,
        depth: u32,
    ) -> FsResult<Arc<Handle>> {
        if depth > CREATE_LINK_DEPTH {
            return Err(FsError::Loop);
        }
        if flags.create {
            // Like Linux: walk to the parent once and resolve the final
            // component with create intent under the parent's lock.
            return self.open_create(proc, start, path, flags, mode, depth);
        }
        let r = self.resolve_from(proc, start, path, !flags.nofollow)?;
        self.open_existing(proc, r, flags)
    }

    fn open_existing(
        &self,
        proc: &Process,
        r: WalkResult,
        flags: OpenFlags,
    ) -> FsResult<Arc<Handle>> {
        if flags.create && flags.excl {
            return Err(FsError::Exist);
        }
        let inode = r.require_inode()?.clone();
        let ftype = inode.ftype();
        if ftype == FileType::Symlink {
            // Only reachable with O_NOFOLLOW on a symlink.
            return Err(FsError::Loop);
        }
        if flags.directory && ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if ftype == FileType::Directory && flags.write {
            return Err(FsError::IsDir);
        }
        if flags.write && r.mount.flags.read_only {
            return Err(FsError::RoFs);
        }
        let cred = proc.cred();
        let mut mask = 0;
        if flags.read {
            mask |= MAY_READ;
        }
        if flags.write || flags.trunc {
            mask |= MAY_WRITE;
        }
        if mask != 0 {
            let path_hint = self
                .security
                .needs_path()
                .then(|| self.vfs_path_of(&PathRef::new(r.mount.clone(), r.dentry.clone())));
            self.permission(&cred, &inode, mask, path_hint.as_deref())?;
        }
        if flags.trunc && ftype == FileType::Regular {
            inode.setattr(SetAttr {
                size: Some(0),
                ..Default::default()
            })?;
        }
        Ok(Handle::new(r.mount, r.dentry, inode, flags))
    }

    fn open_create(
        &self,
        proc: &Process,
        start: Option<PathRef>,
        path: &str,
        flags: OpenFlags,
        mode: u16,
        depth: u32,
    ) -> FsResult<Arc<Handle>> {
        let pr = self.resolve_parent_from(proc, start.clone(), path)?;
        if pr.require_dir {
            return Err(FsError::IsDir); // creating "name/" as a file
        }
        let cred = proc.cred();
        let parent_d = pr.parent.dentry.clone();
        let mount = pr.parent.mount.clone();
        let _g = parent_d.dir_lock().lock();
        // Resolve the final component under the lock; O_CREAT on an
        // existing object needs no write permission on the directory.
        match self.lookup_one_locked(&mount, &parent_d, &pr.name) {
            Ok(d) if !d.is_negative() => {
                // A dangling symlink resolves NoEnt but exists as a link:
                // O_CREAT creates the *target* (Linux semantics).
                if let Some(inode) = d.inode() {
                    if inode.ftype() == FileType::Symlink && !flags.nofollow {
                        let target = mount.sb.fs.readlink(inode.ino)?;
                        drop(_g);
                        let base = PathRef::new(mount, parent_d);
                        return self.open_internal(
                            proc,
                            Some(base),
                            &target,
                            flags,
                            mode,
                            depth + 1,
                        );
                    }
                }
                drop(_g);
                let r = WalkResult {
                    mount,
                    inode: d.inode(),
                    dentry: d,
                };
                self.open_existing(proc, r, flags)
            }
            Ok(negative) => {
                // Actually creating: now the directory must be writable.
                self.check_dir_mutable(&cred, &pr.parent, None)?;
                let dir_ino = pr.parent.require_inode()?.ino;
                let attr =
                    mount
                        .sb
                        .fs
                        .create(dir_ino, &pr.name, mode & 0o7777, cred.uid, cred.gid)?;
                let inode = self.icache.get_or_create(mount.sb.id, &mount.sb.fs, attr);
                let dentry =
                    self.instantiate_created(&parent_d, Some(negative), &pr.name, inode.clone());
                Ok(Handle::new(mount.clone(), dentry, inode, flags))
            }
            Err(FsError::NoEnt) => {
                // Negative caching disabled; create directly.
                self.check_dir_mutable(&cred, &pr.parent, None)?;
                let dir_ino = pr.parent.require_inode()?.ino;
                let attr =
                    mount
                        .sb
                        .fs
                        .create(dir_ino, &pr.name, mode & 0o7777, cred.uid, cred.gid)?;
                let inode = self.icache.get_or_create(mount.sb.id, &mount.sb.fs, attr);
                let dentry = self.instantiate_created(&parent_d, None, &pr.name, inode.clone());
                Ok(Handle::new(mount.clone(), dentry, inode, flags))
            }
            Err(e) => Err(e),
        }
    }

    /// `close(2)`.
    pub fn close(&self, proc: &Process, fd: u32) -> FsResult<()> {
        self.timing
            .record(SyscallClass::Other, || proc.take_fd(fd).map(|_| ()))
    }

    /// `mkstemp(3)`: creates a uniquely-named file under `dir_path` with
    /// `O_CREAT|O_EXCL`, returning `(fd, name)`. Exercises the §5.1
    /// completeness optimization: in a complete directory the existence
    /// probe needs no file-system call.
    pub fn mkstemp(&self, proc: &Process, dir_path: &str, prefix: &str) -> FsResult<(u32, String)> {
        self.timing.record(SyscallClass::Open, || {
            for _ in 0..128 {
                let suffix = self.tmp_rand();
                let name = format!("{prefix}{suffix:06x}");
                let path = if dir_path.ends_with('/') {
                    format!("{dir_path}{name}")
                } else {
                    format!("{dir_path}/{name}")
                };
                match self.open_internal(proc, None, &path, OpenFlags::create_excl(), 0o600, 0) {
                    Ok(h) => {
                        let fd = proc.install_fd(h)?;
                        return Ok((fd, name));
                    }
                    Err(FsError::Exist) => continue,
                    Err(e) => return Err(e),
                }
            }
            Err(FsError::Exist)
        })
    }
}
