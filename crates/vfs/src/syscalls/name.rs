//! `unlink`, `rename`, `link`, `symlink` — the namespace mutations whose
//! coherence §3.2 is about.

use crate::kernel::Kernel;
use crate::process::Process;
use crate::timing::SyscallClass;
use dc_fs::{FileType, FsError, FsResult};
use dcache_core::{Dentry, DentryState, NegKind};
use std::sync::Arc;

impl Kernel {
    /// `unlink(2)`.
    pub fn unlink(&self, proc: &Process, path: &str) -> FsResult<()> {
        self.timing
            .record(SyscallClass::Unlink, || self.unlink_internal(proc, path))
    }

    /// `unlinkat(2)` with `AT_REMOVEDIR` selecting rmdir behavior.
    pub fn unlinkat(&self, proc: &Process, dirfd: u32, path: &str, rmdir: bool) -> FsResult<()> {
        let base = self.at_base(proc, dirfd)?;
        let full = if path.starts_with('/') {
            path.to_string()
        } else {
            let mut p = self.vfs_path_of(&base);
            if !p.ends_with('/') {
                p.push('/');
            }
            p.push_str(path);
            p
        };
        if rmdir {
            self.rmdir(proc, &full)
        } else {
            self.unlink(proc, &full)
        }
    }

    fn unlink_internal(&self, proc: &Process, path: &str) -> FsResult<()> {
        let pr = self.resolve_parent(proc, path)?;
        if pr.require_dir {
            return Err(FsError::IsDir); // "unlink x/" — directory form
        }
        let cred = proc.cred();
        self.check_dir_mutable(&cred, &pr.parent, None)?;
        let parent_d = pr.parent.dentry.clone();
        let mount = pr.parent.mount.clone();
        let _g = parent_d.dir_lock().lock();
        let target = self.lookup_one_locked(&mount, &parent_d, &pr.name)?;
        let inode = target.inode().ok_or(FsError::NoEnt)?;
        if inode.is_dir() {
            return Err(FsError::IsDir);
        }
        let parent_attr = pr.parent.require_inode()?.attr();
        if !Self::sticky_ok(&cred, &parent_attr, &inode.attr()) {
            return Err(FsError::Perm);
        }
        mount.sb.fs.unlink(parent_attr.ino, &pr.name)?;
        let gone = inode.attr().nlink <= 1;
        if gone {
            self.icache.forget(mount.sb.id, inode.ino);
        } else if let Ok(attr) = mount.sb.fs.getattr(inode.ino) {
            // The object survives through other hard links; refresh the
            // cached attributes (nlink, ctime).
            inode.store_attr(attr);
        }
        // §5.2, "Renaming and Deletion": the optimized cache keeps a
        // negative dentry even for in-use files; the baseline converts
        // only unused dentries (Linux `d_delete`) and unhashes the rest.
        let unused = Arc::strong_count(&target) <= 2; // parent map + ours
        if self.negatives_allowed(&mount.sb.fs) && (self.dcache.config.neg_on_unlink || unused) {
            self.dcache.make_negative(&target, NegKind::Enoent);
        } else {
            self.dcache.unhash_subtree(&target);
        }
        Ok(())
    }

    /// `rename(2)` — the paper's §3.2 protocol: advance the global
    /// invalidation counter, shoot down both subtrees (version bumps +
    /// DLHT evictions + hash-state clears), perform the change under the
    /// global rename seqlock, then move the dentry.
    pub fn rename(&self, proc: &Process, old: &str, new: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::OtherMeta, || {
            self.rename_internal(proc, old, new)
        })
    }

    fn rename_internal(&self, proc: &Process, old: &str, new: &str) -> FsResult<()> {
        let ns = proc.namespace();
        let cred = proc.cred();
        let pro = self.resolve_parent(proc, old)?;
        let prn = self.resolve_parent(proc, new)?;
        if pro.parent.mount.id != prn.parent.mount.id {
            return Err(FsError::XDev);
        }
        let mount = pro.parent.mount.clone();
        self.check_dir_mutable(&cred, &pro.parent, None)?;
        self.check_dir_mutable(&cred, &prn.parent, None)?;

        // The write side of the global rename seqlock: fails concurrent
        // optimistic walks and excludes other structural changes.
        let _rl = self.dcache.rename_lock.write();
        let op = pro.parent.dentry.clone();
        let np = prn.parent.dentry.clone();
        // Both parents' dir locks, in id order (a no-op pair when equal).
        let (_g1, _g2);
        if op.id() < np.id() {
            _g1 = Some(op.dir_lock().lock());
            _g2 = Some(np.dir_lock().lock());
        } else if op.id() > np.id() {
            _g1 = Some(np.dir_lock().lock());
            _g2 = Some(op.dir_lock().lock());
        } else {
            _g1 = Some(op.dir_lock().lock());
            _g2 = None;
        }

        let src = self.lookup_one_locked(&mount, &op, &pro.name)?;
        let src_inode = src.inode().ok_or(FsError::NoEnt)?;
        let parent_attr = pro.parent.require_inode()?.attr();
        if !Self::sticky_ok(&cred, &parent_attr, &src_inode.attr()) {
            return Err(FsError::Perm);
        }
        if ns.is_mountpoint(mount.id, src.id()) {
            return Err(FsError::Busy);
        }
        // Moving a directory into its own subtree is forbidden.
        if src_inode.is_dir() {
            let mut a: Option<Arc<Dentry>> = Some(np.clone());
            while let Some(d) = a {
                if d.id() == src.id() {
                    return Err(FsError::Inval);
                }
                a = d.parent();
            }
        }
        let dst = match self.lookup_one_locked(&mount, &np, &prn.name) {
            Ok(d) => Some(d),
            Err(FsError::NoEnt) => None,
            Err(e) => return Err(e),
        };
        if let Some(d) = &dst {
            if let Some(dst_inode) = d.inode() {
                if d.id() == src.id() || dst_inode.ino == src_inode.ino {
                    return Ok(()); // same object: POSIX no-op
                }
                if ns.is_mountpoint(mount.id, d.id()) {
                    return Err(FsError::Busy);
                }
                if !Self::sticky_ok(
                    &cred,
                    &prn.parent.require_inode()?.attr(),
                    &dst_inode.attr(),
                ) {
                    return Err(FsError::Perm);
                }
            }
        }
        if pro.parent.dentry.id() == prn.parent.dentry.id() && pro.name == prn.name {
            return Ok(());
        }

        // §3.2: counter first, then the shootdowns, then the mutation.
        // The recursive invalidation only exists to keep the fastpath
        // caches coherent; the unmodified kernel keeps rename
        // constant-time (Figure 7's comparison).
        if self.dcache.config.fastpath {
            self.dcache.bump_invalidation();
            self.dcache.shoot_subtree(&src, true);
            if let Some(d) = &dst {
                self.dcache.shoot_subtree(d, true);
            }
        }

        let old_dir_ino = parent_attr.ino;
        let new_dir_ino = prn.parent.require_inode()?.ino;
        mount
            .sb
            .fs
            .rename(old_dir_ino, &pro.name, new_dir_ino, &prn.name)?;

        // Cache updates: drop whatever was at the destination, move the
        // source dentry, leave a negative at the origin (§5.2).
        if let Some(d) = dst {
            if let Some(i) = d.inode() {
                if i.attr().nlink <= 1 {
                    self.icache.forget(mount.sb.id, i.ino);
                }
            }
            self.dcache.unhash_subtree(&d);
        }
        self.dcache.d_move(&src, &np, &prn.name);
        if self.dcache.config.neg_on_unlink && self.negatives_allowed(&mount.sb.fs) {
            let _g = op.dir_lock(); // already held above
            if self.dcache.d_lookup(&op, &pro.name).is_none() {
                self.dcache
                    .d_alloc(&op, &pro.name, DentryState::Negative(NegKind::Enoent));
            }
        }
        Ok(())
    }

    /// `link(2)` — hard links.
    pub fn link(&self, proc: &Process, oldpath: &str, newpath: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::OtherMeta, || {
            let old = self.resolve(proc, oldpath, false)?;
            let old_inode = old.require_inode()?.clone();
            if old_inode.is_dir() {
                return Err(FsError::Perm);
            }
            let pr = self.resolve_parent(proc, newpath)?;
            if pr.parent.mount.id != old.mount.id {
                return Err(FsError::XDev);
            }
            let cred = proc.cred();
            self.check_dir_mutable(&cred, &pr.parent, None)?;
            let parent_d = pr.parent.dentry.clone();
            let mount = pr.parent.mount.clone();
            let _g = parent_d.dir_lock().lock();
            let existing = match self.lookup_one_locked(&mount, &parent_d, &pr.name) {
                Ok(d) if !d.is_negative() => return Err(FsError::Exist),
                Ok(neg) => Some(neg),
                Err(FsError::NoEnt) => None,
                Err(e) => return Err(e),
            };
            let dir_ino = pr.parent.require_inode()?.ino;
            let attr = mount.sb.fs.link(dir_ino, &pr.name, old_inode.ino)?;
            old_inode.store_attr(attr);
            self.instantiate_created(&parent_d, existing, &pr.name, old_inode);
            Ok(())
        })
    }

    /// `symlink(2)`.
    pub fn symlink(&self, proc: &Process, target: &str, linkpath: &str) -> FsResult<()> {
        self.timing.record(SyscallClass::OtherMeta, || {
            if target.is_empty() {
                return Err(FsError::NoEnt);
            }
            let pr = self.resolve_parent(proc, linkpath)?;
            let cred = proc.cred();
            self.check_dir_mutable(&cred, &pr.parent, None)?;
            let parent_d = pr.parent.dentry.clone();
            let mount = pr.parent.mount.clone();
            let _g = parent_d.dir_lock().lock();
            let existing = match self.lookup_one_locked(&mount, &parent_d, &pr.name) {
                Ok(d) if !d.is_negative() => return Err(FsError::Exist),
                Ok(neg) => Some(neg),
                Err(FsError::NoEnt) => None,
                Err(e) => return Err(e),
            };
            let dir_ino = pr.parent.require_inode()?.ino;
            let attr = mount
                .sb
                .fs
                .symlink(dir_ino, &pr.name, target, cred.uid, cred.gid)?;
            let inode = self.icache.get_or_create(mount.sb.id, &mount.sb.fs, attr);
            self.instantiate_created(&parent_d, existing, &pr.name, inode);
            let _ = FileType::Symlink;
            Ok(())
        })
    }
}
