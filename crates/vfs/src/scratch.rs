//! Inline scratch storage for the lookup hot path (DESIGN.md §13).
//!
//! A warm fastpath stat used to pay two heap allocations before it ever
//! touched the DLHT: the `Vec` of parsed components and the `Vec` of
//! pending (dot-dot-reduced) components. Both are tiny — almost every
//! real path has well under [`INLINE_COMPONENTS`] components — and both
//! die before the syscall returns, the textbook case for inline
//! storage. [`InlineVec`] keeps up to `N` elements in the parent
//! object itself (for [`crate::path::ParsedPath`], the caller's stack
//! frame) and spills to a real `Vec` only past that, so the warm path
//! performs **zero** heap allocations end to end — asserted by the
//! allocation-counting harness in `tests/lockfree_read.rs`.
//!
//! The `scratch_arena: false` ablation constructs these heap-backed
//! ([`InlineVec::heap_backed`]) to reproduce the pre-layout allocation
//! behavior for the fig-3 attribution table.

/// Inline capacity used for path components throughout the walkers.
/// Sixteen components cover every path in the paper's workloads; deeper
/// paths spill and still resolve correctly.
pub const INLINE_COMPONENTS: usize = 16;

/// A small-vector: up to `N` elements stored inline, spilling to the
/// heap on overflow (or from the start, for ablation measurements).
///
/// `T: Copy + Default` keeps the implementation free of `unsafe`: the
/// inline buffer is a plain `[T; N]` pre-filled with defaults, and only
/// `buf[..len]` is ever observable.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    buf: [T; N],
    len: usize,
    /// Exclusive storage once `spilled`; empty and unused before.
    heap: Vec<T>,
    spilled: bool,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector using inline storage.
    #[inline]
    pub fn new() -> Self {
        InlineVec {
            buf: [T::default(); N],
            len: 0,
            heap: Vec::new(),
            spilled: false,
        }
    }

    /// An empty vector that allocates from the start — the pre-layout
    /// (`scratch_arena: false`) behavior, one malloc per parse.
    #[inline]
    pub fn heap_backed(capacity: usize) -> Self {
        InlineVec {
            buf: [T::default(); N],
            len: 0,
            heap: Vec::with_capacity(capacity.max(1)),
            spilled: true,
        }
    }

    /// Appends an element, migrating to the heap when the inline buffer
    /// fills.
    #[inline]
    pub fn push(&mut self, value: T) {
        if !self.spilled {
            if self.len < N {
                self.buf[self.len] = value;
                self.len += 1;
                return;
            }
            self.spill();
        }
        self.heap.push(value);
    }

    /// Removes and returns the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            return self.heap.pop();
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.buf[self.len])
    }

    /// True once elements live on the heap rather than inline.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        self.spilled
    }

    #[cold]
    fn spill(&mut self) {
        debug_assert!(!self.spilled);
        self.heap.reserve(self.len + 1);
        self.heap.extend_from_slice(&self.buf[..self.len]);
        self.len = 0;
        self.spilled = true;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        if self.spilled {
            &self.heap
        } else {
            &self.buf[..self.len]
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.is_spilled());
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..20 {
            v.push(i);
        }
        assert!(v.is_spilled());
        assert_eq!(&v[..], (0..20).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn pop_works_in_both_modes() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert_eq!(v.pop(), None);
        v.push(1);
        assert_eq!(v.pop(), Some(1));
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.pop(), Some(4));
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn heap_backed_never_uses_inline_buffer() {
        let mut v: InlineVec<u32, 8> = InlineVec::heap_backed(3);
        assert!(v.is_spilled());
        v.push(7);
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn clone_and_eq_cross_modes() {
        let mut a: InlineVec<u32, 4> = InlineVec::new();
        let mut b: InlineVec<u32, 4> = InlineVec::heap_backed(4);
        for i in 0..3 {
            a.push(i);
            b.push(i);
        }
        assert_eq!(a, b);
        assert_eq!(a.clone(), b.clone());
        assert_eq!(a, [0, 1, 2]);
    }

    #[test]
    fn str_slices_work() {
        // The actual instantiation the walkers use.
        let mut v: InlineVec<&str, 4> = InlineVec::new();
        v.push("usr");
        v.push("lib");
        assert_eq!(v, vec!["usr", "lib"]);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), ["usr", "lib"]);
    }
}
