//! Open file handles.

use crate::mount::Mount;
use dc_fs::DirEntry;
use dcache_core::{Dentry, Inode};
use parking_lot::Mutex;
use std::sync::Arc;

/// `open(2)` flags, structured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create if absent (`O_CREAT`).
    pub create: bool,
    /// With `create`: fail if present (`O_EXCL`).
    pub excl: bool,
    /// Truncate on open (`O_TRUNC`).
    pub trunc: bool,
    /// Do not follow a final symlink (`O_NOFOLLOW`).
    pub nofollow: bool,
    /// Require a directory (`O_DIRECTORY`).
    pub directory: bool,
    /// Append writes (`O_APPEND`).
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY|O_CREAT|O_TRUNC` — the classic create-for-write.
    pub fn create() -> Self {
        OpenFlags {
            write: true,
            create: true,
            trunc: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY|O_CREAT|O_EXCL` — exclusive creation (mkstemp).
    pub fn create_excl() -> Self {
        OpenFlags {
            write: true,
            create: true,
            excl: true,
            ..Default::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    /// `O_RDONLY|O_DIRECTORY` — for readdir.
    pub fn directory() -> Self {
        OpenFlags {
            read: true,
            directory: true,
            ..Default::default()
        }
    }
}

/// Cursor state for an in-progress directory stream.
///
/// Tracks what §5.1 needs: whether a full pass (no `lseek`, no concurrent
/// child eviction) has been completed, in which case the directory may be
/// marked `DIR_COMPLETE`; and a snapshot when the listing is served from
/// the dcache so pagination stays stable.
#[derive(Default)]
pub struct DirCursor {
    /// Next low-level file-system cursor.
    pub fs_offset: u64,
    /// True once any batch was returned.
    pub started: bool,
    /// The parent's child-eviction generation when the stream started.
    pub gen_at_start: u64,
    /// An `lseek` happened; the stream no longer proves completeness.
    pub seeked: bool,
    /// End-of-directory reached.
    pub eof: bool,
    /// Snapshot used when serving from the cache (completeness hits).
    pub snapshot: Option<std::sync::Arc<Vec<DirEntry>>>,
    /// Position within the snapshot.
    pub snapshot_pos: usize,
}

/// An open file description.
pub struct Handle {
    /// The mount the file was opened through (write checks honor its
    /// flags even after the file is renamed elsewhere).
    pub mount: Arc<Mount>,
    /// The dentry the file was opened at.
    pub dentry: Arc<Dentry>,
    /// The inode; open handles keep inodes alive after unlink.
    pub inode: Arc<Inode>,
    /// Open mode.
    pub flags: OpenFlags,
    /// File position.
    pub pos: Mutex<u64>,
    /// Directory stream state.
    pub dir: Mutex<DirCursor>,
}

impl Handle {
    /// Wraps an opened object.
    pub fn new(
        mount: Arc<Mount>,
        dentry: Arc<Dentry>,
        inode: Arc<Inode>,
        flags: OpenFlags,
    ) -> Arc<Handle> {
        Arc::new(Handle {
            mount,
            dentry,
            inode,
            flags,
            pos: Mutex::new(0),
            dir: Mutex::new(DirCursor::default()),
        })
    }
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("ino", &self.inode.ino)
            .field("dentry", &self.dentry.id())
            .field("flags", &self.flags)
            .field("pos", &*self.pos.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_constructors() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        let c = OpenFlags::create();
        assert!(c.write && c.create && c.trunc && !c.excl);
        let e = OpenFlags::create_excl();
        assert!(e.excl && e.create && !e.trunc);
        assert!(OpenFlags::directory().directory);
    }
}
