//! The slowpath: Linux-style component-at-a-time path resolution.
//!
//! This is both the baseline under evaluation ("unmodified kernel") and
//! the fallback + cache-filler for the fastpath. Structure (§2.2, §3.2):
//!
//! - per component: permission check on the directory, per-parent hash
//!   lookup, miss → low-level FS call under the parent's `dir_lock`;
//! - optimistic synchronization: the walk validates against the global
//!   rename seqlock and retries (bounded, then excludes writers) — the
//!   RCU-walk/ref-walk split;
//! - while walking (optimized configurations) it computes the running
//!   path signature, stores resumable hash states in dentries, and queues
//!   DLHT/PCC publications that are applied only if no shootdown ran
//!   concurrently (`invalidation` counter), with rollback on a lost race;
//! - negative dentries, deep negative chains, directory-completeness
//!   short-circuits, and symlink alias creation all happen here, policy
//!   driven by [`dcache_core::DcacheConfig`].

use crate::kernel::Kernel;
use crate::mount::Mount;
use crate::namespace::MountNamespace;
use crate::path::{split_path_in, ParsedPath, PathRef, WalkResult};
use crate::process::Process;
use dc_cred::{Cred, PermCtx, MAY_EXEC};
use dc_fs::{FileSystem, FsError, FsResult};
use dc_obs::{LookupOutcome, TraceEvent};
use dcache_core::{
    Dentry, DentryState, HashState, Inode, NegKind, Pcc, Signature, FLAG_DIR_COMPLETE,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Maximum nested symlink depth (Linux's limit).
const MAX_LINK_DEPTH: u32 = 40;

/// Bounded optimistic retries before excluding renames.
const MAX_OPTIMISTIC: u32 = 4;

/// Result of a parent-mode resolution (for create/unlink/rename).
pub(crate) struct ParentResult {
    /// The parent directory (always positive).
    pub parent: WalkResult,
    /// The final component name.
    pub name: String,
    /// The path had a trailing slash — the target must be a directory.
    pub require_dir: bool,
}

/// A queued cache publication, applied after walk validation (§3.2).
enum Publish {
    Dlht {
        dentry: Arc<Dentry>,
        sig: Signature,
        state: HashState,
        mount: u64,
    },
    Pcc {
        id: u64,
        seq: u64,
    },
}

impl Kernel {
    /// Resolves `path` for `proc` (fastpath first when configured).
    pub(crate) fn resolve(
        &self,
        proc: &Process,
        path: &str,
        follow_last: bool,
    ) -> FsResult<WalkResult> {
        self.resolve_from(proc, None, path, follow_last)
    }

    /// Resolves `path`, starting relative paths at `start` (the `*at()`
    /// family) or the process cwd.
    pub(crate) fn resolve_from(
        &self,
        proc: &Process,
        start: Option<PathRef>,
        path: &str,
        follow_last: bool,
    ) -> FsResult<WalkResult> {
        let parsed = split_path_in(path, self.dcache.config.scratch_arena)?;
        self.dcache.stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.dcache.obs.event(|| TraceEvent::LookupStart);
        let t0 = self.dcache.obs.now();
        let out = (|| {
            if self.dcache.config.fastpath {
                if let Some(out) = self.fast_resolve(proc, start.as_ref(), &parsed, follow_last) {
                    return out;
                }
            }
            match self.slow_resolve(proc, start, &parsed, follow_last, false)? {
                WalkOutput::Full(r) => Ok(r),
                // Mode mismatch is an internal bug; surface EIO, not a
                // panic, so a syscall can never take the kernel down.
                WalkOutput::Parent(..) => Err(FsError::Io),
            }
        })();
        if let Some(t0) = t0 {
            let outcome = lookup_outcome(&out);
            let ns = t0.elapsed().as_nanos() as u64;
            self.dcache
                .obs
                .event(|| TraceEvent::LookupEnd { outcome, ns });
        }
        out
    }

    /// Resolves everything but the final component; the caller mutates
    /// `name` under the returned parent.
    pub(crate) fn resolve_parent(&self, proc: &Process, path: &str) -> FsResult<ParentResult> {
        self.resolve_parent_from(proc, None, path)
    }

    /// Parent-mode resolution with an explicit start (the `*at()` family).
    pub(crate) fn resolve_parent_from(
        &self,
        proc: &Process,
        start: Option<PathRef>,
        path: &str,
    ) -> FsResult<ParentResult> {
        let parsed = split_path_in(path, self.dcache.config.scratch_arena)?;
        self.dcache.stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.dcache.obs.event(|| TraceEvent::LookupStart);
        let t0 = self.dcache.obs.now();
        let out = (|| match self.slow_resolve(proc, start, &parsed, true, true)? {
            WalkOutput::Parent(parent, name, require_dir) => Ok(ParentResult {
                parent,
                name,
                require_dir,
            }),
            WalkOutput::Full(_) => Err(FsError::Io), // mode mismatch: see resolve_from
        })();
        if let Some(t0) = t0 {
            let outcome = lookup_outcome(&out);
            let ns = t0.elapsed().as_nanos() as u64;
            self.dcache
                .obs
                .event(|| TraceEvent::LookupEnd { outcome, ns });
        }
        out
    }

    /// One LSM-stack permission check.
    pub(crate) fn permission(
        &self,
        cred: &Cred,
        inode: &Inode,
        mask: u32,
        path: Option<&str>,
    ) -> FsResult<()> {
        let attr = inode.attr();
        self.security
            .permission(cred, &PermCtx { attr: &attr, path }, mask)
    }

    /// Whether negative dentries may be created on `fs` (§5.2).
    pub(crate) fn negatives_allowed(&self, fs: &Arc<dyn FileSystem>) -> bool {
        let c = &self.dcache.config;
        if !c.negative_dentries {
            return false;
        }
        if fs.is_pseudo() && !c.neg_in_pseudo {
            return false;
        }
        true
    }

    /// Reconstructs the canonical namespace path of a position (used for
    /// path-sensitive LSMs and `getcwd`).
    pub(crate) fn vfs_path_of(&self, at: &PathRef) -> String {
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut mount = at.mount.clone();
        let mut d = at.dentry.clone();
        loop {
            if Arc::ptr_eq(&d, &mount.root) {
                match mount.parent.clone() {
                    Some((pm, mp)) => {
                        mount = pm;
                        d = mp;
                    }
                    None => break,
                }
            } else {
                match d.parent() {
                    Some(p) => {
                        names.push(d.name());
                        d = p;
                    }
                    None => break,
                }
            }
        }
        if names.is_empty() {
            return "/".to_string();
        }
        let mut s = String::new();
        for n in names.iter().rev() {
            s.push('/');
            s.push_str(n);
        }
        s
    }

    /// Rebuilds (and caches) the resumable hash state for a position by
    /// climbing to the nearest ancestor with a cached state (§3.1).
    pub(crate) fn rebuild_hash_state(&self, at: &PathRef) -> Option<HashState> {
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut mount = at.mount.clone();
        let mut d = at.dentry.clone();
        let base = loop {
            if let Some(h) = d.hash_state() {
                break h;
            }
            if Arc::ptr_eq(&d, &mount.root) {
                match mount.parent.clone() {
                    Some((pm, mp)) => {
                        mount = pm;
                        d = mp;
                    }
                    None => break self.dcache.key.root_state(),
                }
            } else {
                match d.parent() {
                    Some(p) => {
                        names.push(d.name());
                        d = p;
                    }
                    None => return None,
                }
            }
        };
        let mut h = base;
        for n in names.iter().rev() {
            self.dcache.key.push_component(&mut h, n.as_bytes());
        }
        at.dentry.store_hash_state(h);
        Some(h)
    }

    fn slow_resolve(
        &self,
        proc: &Process,
        start: Option<PathRef>,
        parsed: &ParsedPath<'_>,
        follow_last: bool,
        parent_mode: bool,
    ) -> FsResult<WalkOutput> {
        self.dcache.stats.slow_walks.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0;
        loop {
            attempts += 1;
            let _serial = self
                .dcache
                .config
                .lock_walk
                .then(|| self.lock_walk_mutex.lock());
            if attempts > MAX_OPTIMISTIC {
                // Contended with structural changes: exclude writers.
                let _w = self.dcache.rename_lock.write();
                let mut w = SlowWalk::new(self, proc, start.clone(), parsed.absolute);
                let out = w.run(parsed, follow_last, parent_mode);
                // No concurrent rename is possible; publish directly.
                let inv0 = w.inv0;
                self.apply_publishes(w, inv0);
                return out;
            }
            let rseq = self.dcache.rename_lock.read_begin();
            let mut w = SlowWalk::new(self, proc, start.clone(), parsed.absolute);
            let out = w.run(parsed, follow_last, parent_mode);
            if self.dcache.rename_lock.read_retry(rseq) {
                self.dcache
                    .stats
                    .slow_retries
                    .fetch_add(1, Ordering::Relaxed);
                self.dcache.obs.event(|| TraceEvent::SeqRetry);
                continue;
            }
            let inv0 = w.inv0;
            let publishes_ok = self.apply_publishes(w, inv0);
            let _ = publishes_ok;
            return out;
        }
    }

    /// Applies queued publications; rolls back if a shootdown raced
    /// (read-before/read-after on the invalidation counter, §3.2).
    fn apply_publishes(&self, w: SlowWalk<'_>, inv0: u64) -> bool {
        if w.publishes.is_empty() {
            return true;
        }
        let ns = w.ns.clone();
        let pcc = w.pcc.clone();
        for p in &w.publishes {
            match p {
                Publish::Dlht {
                    dentry,
                    sig,
                    state,
                    mount,
                } => {
                    dentry.store_hash_state(*state);
                    dentry.set_mount_hint(*mount);
                    // Publish through the namespace's memoized handle so
                    // the dentry records *which table* it lives in: if
                    // the namespace is torn down mid-walk the insert
                    // lands in the retired (dying) table, not a revived
                    // map entry.
                    let table = ns.dlht_handle(&self.dcache);
                    self.dcache.dlht_insert_in(table, *sig, dentry);
                }
                Publish::Pcc { id, seq } => {
                    if let Some(pcc) = &pcc {
                        pcc.insert(*id, *seq);
                    }
                }
            }
        }
        if self.dcache.invalidation_counter() != inv0 {
            // Lost a race with a shootdown: undo everything we added.
            for p in &w.publishes {
                match p {
                    Publish::Dlht { dentry, .. } => {
                        dentry.clear_hash_state();
                        self.dcache.dlht_remove(dentry);
                    }
                    Publish::Pcc { id, .. } => {
                        if let Some(pcc) = &pcc {
                            pcc.forget(*id);
                        }
                    }
                }
            }
            return false;
        }
        true
    }
}

/// Maps a resolution result onto the span-trace outcome taxonomy:
/// provable absence (`ENOENT`/`ENOTDIR`) is negative, anything else
/// that failed is an error.
fn lookup_outcome<T>(out: &FsResult<T>) -> LookupOutcome {
    match out {
        Ok(_) => LookupOutcome::Positive,
        Err(FsError::NoEnt) | Err(FsError::NotDir) => LookupOutcome::Negative,
        Err(_) => LookupOutcome::Error,
    }
}

/// Output of a slow resolution.
pub(crate) enum WalkOutput {
    /// Full mode: the final object.
    Full(WalkResult),
    /// Parent mode: parent directory, final name, trailing-slash flag.
    Parent(WalkResult, String, bool),
}

struct SlowWalk<'k> {
    k: &'k Kernel,
    cred: Arc<Cred>,
    ns: Arc<MountNamespace>,
    root: PathRef,
    cur: PathRef,
    /// Fastpath-support machinery enabled (publishing, hashing).
    fast: bool,
    pcc: Option<Arc<Pcc>>,
    /// Running literal-path hash state; `None` disables DLHT publishing.
    hstate: Option<HashState>,
    /// Set while the literal path has diverged from the canonical path
    /// (inside a symlink'd suffix): the tail of the alias chain (§4.2).
    alias_parent: Option<Arc<Dentry>>,
    /// PCC publication allowed: the walk is anchored at the namespace
    /// root, or the anchor itself had a valid memoized prefix check
    /// (the §3.2 directory-reference rule).
    pcc_ok: bool,
    /// Canonical path of `cur`, maintained only when an LSM needs paths.
    path_str: Option<String>,
    link_depth: u32,
    /// Components stepped so far (the `SlowStep` span payload).
    steps: u32,
    publishes: Vec<Publish>,
    inv0: u64,
}

impl<'k> SlowWalk<'k> {
    fn new(k: &'k Kernel, proc: &Process, start: Option<PathRef>, absolute: bool) -> Self {
        let cred = proc.cred();
        let ns = proc.namespace();
        let root = proc.root();
        let anchor = if absolute {
            root.clone()
        } else {
            start.unwrap_or_else(|| proc.cwd())
        };
        let fast = k.dcache.config.fastpath;
        let pcc = fast.then(|| k.dcache.pcc_for(&cred, ns.id));
        let hstate = if fast {
            anchor
                .dentry
                .hash_state()
                .or_else(|| k.rebuild_hash_state(&anchor))
        } else {
            None
        };
        let at_ns_root = Arc::ptr_eq(&anchor.dentry, &ns.root_mount().root);
        let pcc_ok = fast
            && (at_ns_root
                || pcc
                    .as_ref()
                    .is_some_and(|p| p.check(anchor.dentry.id(), anchor.dentry.seq())));
        let path_str = k.security.needs_path().then(|| k.vfs_path_of(&anchor));
        let inv0 = k.dcache.invalidation_counter();
        SlowWalk {
            k,
            cred,
            ns,
            root,
            cur: anchor,
            fast,
            pcc,
            hstate,
            alias_parent: None,
            pcc_ok,
            path_str,
            link_depth: 0,
            steps: 0,
            publishes: Vec::new(),
            inv0,
        }
    }

    fn run(
        &mut self,
        parsed: &ParsedPath<'_>,
        follow_last: bool,
        parent_mode: bool,
    ) -> FsResult<WalkOutput> {
        let comps: Vec<&str> = if self.k.dcache.config.lexical_dotdot {
            lexical_simplify(&parsed.components)
        } else {
            parsed.components.to_vec()
        };
        if parent_mode {
            let Some((last, rest)) = comps.split_last() else {
                return Err(FsError::Busy); // mutating "/" itself
            };
            if *last == ".." {
                return Err(FsError::Inval);
            }
            self.walk_components(rest, true)?;
            self.ensure_cur_dir()?;
            self.check_exec()?;
            let parent = WalkResult {
                mount: self.cur.mount.clone(),
                dentry: self.cur.dentry.clone(),
                inode: self.cur.dentry.inode(),
            };
            return Ok(WalkOutput::Parent(
                parent,
                (*last).to_string(),
                parsed.require_dir,
            ));
        }
        self.walk_components(&comps, follow_last)?;
        if parsed.require_dir {
            self.ensure_cur_dir()?;
        }
        let inode = self.cur.dentry.inode();
        if inode.is_none() {
            // The anchor itself can never be negative; a negative final
            // component already returned its error inside the walk.
            return Err(self
                .cur
                .dentry
                .neg_kind()
                .map(|k| k.error())
                .unwrap_or(FsError::NoEnt));
        }
        Ok(WalkOutput::Full(WalkResult {
            mount: self.cur.mount.clone(),
            dentry: self.cur.dentry.clone(),
            inode,
        }))
    }

    fn walk_components(&mut self, comps: &[&str], follow_last: bool) -> FsResult<()> {
        for (i, name) in comps.iter().enumerate() {
            let is_last = i + 1 == comps.len();
            self.step(name, is_last, follow_last)?;
        }
        Ok(())
    }

    fn fs(&self) -> Arc<dyn FileSystem> {
        self.cur.mount.sb.fs.clone()
    }

    fn step(&mut self, name: &str, is_last: bool, follow_last: bool) -> FsResult<()> {
        self.k
            .dcache
            .stats
            .slow_steps
            .fetch_add(1, Ordering::Relaxed);
        let component = self.steps;
        self.steps += 1;
        self.k
            .dcache
            .obs
            .event(|| TraceEvent::SlowStep { component });
        if name == ".." {
            return self.step_dotdot();
        }
        // Fabricated walking below negative dentries / non-directories.
        if self.pre_step(name, is_last)? {
            return Ok(()); // descended into a fabricated negative child
        }
        self.check_exec()?;
        let child = self.lookup_child(name)?;
        // Extend the literal hash state.
        if let Some(mut h) = self.hstate {
            self.k.dcache.key.push_component(&mut h, name.as_bytes());
            self.hstate = Some(h);
        }
        // Classify.
        let is_symlink = child
            .inode()
            .map(|i| i.ftype() == dc_fs::FileType::Symlink)
            .unwrap_or(false);
        if is_symlink && (!is_last || follow_last) {
            // Publish the symlink dentry under the literal path, then
            // divert into the target.
            self.publish_step(&child, self.cur.mount.id);
            self.push_path_seg(name);
            return self.enter_symlink(child, is_last);
        }
        if child.is_negative() {
            self.publish_step(&child, self.cur.mount.id);
            // A racing writer may upgrade the dentry to positive between
            // the `is_negative` check and here; linearize at the check.
            let kind = child.neg_kind().unwrap_or(NegKind::Enoent);
            if is_last {
                self.cur = PathRef::new(self.cur.mount.clone(), child);
                return Err(kind.error());
            }
            if self.k.dcache.config.deep_negative && self.k.negatives_allowed(&self.fs()) {
                self.cur = PathRef::new(self.cur.mount.clone(), child);
                self.push_path_seg(name);
                return Ok(());
            }
            return Err(match kind {
                NegKind::Enoent => FsError::NoEnt,
                NegKind::Enotdir => FsError::NotDir,
            });
        }
        // Positive (or just-upgraded partial): cross mountpoints.
        let mut next = PathRef::new(self.cur.mount.clone(), child);
        while let Some(m) = self.ns.mount_at(next.mount.id, next.dentry.id()) {
            let mroot = m.root.clone();
            next = PathRef::new(m, mroot);
        }
        self.publish_step(&next.dentry, next.mount.id);
        self.push_path_seg(name);
        self.cur = next;
        Ok(())
    }

    /// Handles stepping when `cur` is not a positive directory: either
    /// fabricates a deep negative child (§5.2) and descends into it
    /// (`Ok(true)`), surfaces the matching error, or reports `Ok(false)`
    /// when `cur` is a real directory and the normal step should run.
    fn pre_step(&mut self, name: &str, is_last: bool) -> FsResult<bool> {
        let kind = match self.classify_cur() {
            CurKind::Dir => return Ok(false),
            CurKind::Partial => {
                self.upgrade_partial_cur()?;
                return self.pre_step(name, is_last);
            }
            CurKind::NonDir => NegKind::Enotdir,
            CurKind::Negative(k) => k,
        };
        let deep_ok = self.k.dcache.config.deep_negative
            && self.k.negatives_allowed(&self.fs())
            && !self.cur.dentry.is_dead();
        if !deep_ok {
            return Err(kind.error());
        }
        // Fabricate (or find) the negative child and keep descending so
        // the full dead path lands in the DLHT.
        let parent = self.cur.dentry.clone();
        let child = {
            let _g = parent.dir_lock().lock();
            match self.k.dcache.d_lookup(&parent, name) {
                Some(c) => c,
                None => {
                    let c = self
                        .k
                        .dcache
                        .d_alloc(&parent, name, DentryState::Negative(kind));
                    self.k
                        .dcache
                        .stats
                        .neg_deep_created
                        .fetch_add(1, Ordering::Relaxed);
                    c
                }
            }
        };
        if !child.is_negative() {
            // A positive child under a negative parent cannot arise
            // through the VFS (parents must exist to create children);
            // answer negatively regardless.
            return Err(kind.error());
        }
        if let Some(mut h) = self.hstate {
            self.k.dcache.key.push_component(&mut h, name.as_bytes());
            self.hstate = Some(h);
        }
        self.publish_step(&child, self.cur.mount.id);
        self.cur = PathRef::new(self.cur.mount.clone(), child);
        self.push_path_seg(name);
        if is_last {
            return Err(kind.error());
        }
        Ok(true)
    }

    fn classify_cur(&self) -> CurKind {
        self.cur.dentry.with_state(|s| match s {
            DentryState::Positive(i) => {
                if i.is_dir() {
                    CurKind::Dir
                } else {
                    CurKind::NonDir
                }
            }
            DentryState::Partial { ftype, .. } => {
                if ftype.is_dir() {
                    CurKind::Partial
                } else {
                    CurKind::NonDir
                }
            }
            DentryState::Negative(k) => CurKind::Negative(*k),
            DentryState::SymlinkAlias { .. } => CurKind::NonDir,
        })
    }

    /// Upgrades a partial `cur` into a positive dentry via `getattr`.
    fn upgrade_partial_cur(&mut self) -> FsResult<()> {
        let d = self.cur.dentry.clone();
        upgrade_partial(self.k, &self.cur.mount, &d)
    }

    fn ensure_cur_dir(&mut self) -> FsResult<()> {
        match self.classify_cur() {
            CurKind::Dir => Ok(()),
            CurKind::Partial => {
                self.upgrade_partial_cur()?;
                self.ensure_cur_dir()
            }
            CurKind::NonDir => Err(FsError::NotDir),
            CurKind::Negative(k) => Err(k.error()),
        }
    }

    fn check_exec(&mut self) -> FsResult<()> {
        let inode = self.cur.dentry.inode().ok_or(FsError::NoEnt)?;
        self.k
            .permission(&self.cred, &inode, MAY_EXEC, self.path_str.as_deref())
    }

    /// Finds or instantiates the child dentry for `name` under `cur`.
    fn lookup_child(&mut self, name: &str) -> FsResult<Arc<Dentry>> {
        let parent = self.cur.dentry.clone();
        let stats = &self.k.dcache.stats;
        // Cache races (an entry dying or reappearing mid-probe) retry;
        // the final lap is authoritative — it treats a dead cached entry
        // as a plain miss and answers from the file system, so memory
        // pressure can slow this walk down but never fail it.
        for attempt in 0..8 {
            let authoritative = attempt == 7;
            if let Some(c) = self.k.dcache.d_lookup(&parent, name) {
                if !c.is_dead() {
                    if c.with_state(|s| matches!(s, DentryState::Partial { .. })) {
                        upgrade_partial(self.k, &self.cur.mount, &c)?;
                    }
                    if c.is_negative() {
                        stats.hit_negative.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stats.hit_positive.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(c);
                }
                if !authoritative {
                    continue;
                }
            }
            // Miss. Completeness short-circuit (§5.1): a complete
            // directory proves absence without calling the file system.
            let fs = self.fs();
            let dir_ino = parent.inode().ok_or(FsError::NoEnt)?.ino;
            let _g = parent.dir_lock().lock();
            // A dying same-name entry can briefly coexist with a
            // still-set completeness flag (eviction clears the flag
            // between marking the child dead and removing it), so its
            // presence disqualifies the short-circuit below.
            let mut dying_hit = false;
            if let Some(c) = self.k.dcache.d_lookup(&parent, name) {
                if c.is_dead() {
                    if !authoritative {
                        continue;
                    }
                    dying_hit = true;
                } else {
                    drop(_g);
                    if authoritative {
                        // No laps left: classify the live hit in place.
                        if c.with_state(|s| matches!(s, DentryState::Partial { .. })) {
                            upgrade_partial(self.k, &self.cur.mount, &c)?;
                        }
                        if c.is_negative() {
                            stats.hit_negative.fetch_add(1, Ordering::Relaxed);
                        } else {
                            stats.hit_positive.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(c);
                    }
                    continue; // reclassify through the hit path
                }
            }
            if !dying_hit && self.k.dcache.config.dir_completeness && parent.flag(FLAG_DIR_COMPLETE)
            {
                stats.complete_neg_avoided.fetch_add(1, Ordering::Relaxed);
                if self.k.negatives_allowed(&fs) {
                    let c = self.k.dcache.d_alloc(
                        &parent,
                        name,
                        DentryState::Negative(NegKind::Enoent),
                    );
                    return Ok(c);
                }
                return Err(FsError::NoEnt);
            }
            stats.miss_fs.fetch_add(1, Ordering::Relaxed);
            self.k.dcache.obs.event(|| TraceEvent::FsMiss);
            match fs.lookup(dir_ino, name) {
                Ok(attr) => {
                    let inode = self.k.icache.get_or_create(self.cur.mount.sb.id, &fs, attr);
                    return Ok(self
                        .k
                        .dcache
                        .d_alloc(&parent, name, DentryState::Positive(inode)));
                }
                Err(FsError::NoEnt) => {
                    if self.k.negatives_allowed(&fs) {
                        return Ok(self.k.dcache.d_alloc(
                            &parent,
                            name,
                            DentryState::Negative(NegKind::Enoent),
                        ));
                    }
                    return Err(FsError::NoEnt);
                }
                Err(e) => return Err(e),
            }
        }
        Err(FsError::Io) // persistent eviction race; effectively unreachable
    }

    /// Publishes `dentry` (DLHT under the current literal signature, PCC
    /// prefix check) — queued, applied post-validation.
    fn publish_step(&mut self, dentry: &Arc<Dentry>, mount_id: u64) {
        if !self.fast || !self.cur.mount.sb.fs.supports_fastpath() {
            return;
        }
        if self.pcc_ok {
            // Skip the queue when the memoized check is already current;
            // repeated slowpath walks (mutation-heavy workloads) would
            // otherwise re-publish every component every time.
            let already = self
                .pcc
                .as_ref()
                .is_some_and(|p| p.check(dentry.id(), dentry.seq()));
            if !already {
                self.publishes.push(Publish::Pcc {
                    id: dentry.id(),
                    seq: dentry.seq(),
                });
            }
        }
        let Some(h) = self.hstate else { return };
        match &self.alias_parent {
            None => {
                // Invariant: a dentry whose stored hash state equals the
                // running state is already published in the DLHT under
                // this signature (stores and membership move together,
                // and structural shootdowns clear both).
                if dentry.hash_state() == Some(h) && dentry.mount_hint() == mount_id {
                    return;
                }
                let sig = self.k.dcache.key.finish(&h);
                self.publishes.push(Publish::Dlht {
                    dentry: dentry.clone(),
                    sig,
                    state: h,
                    mount: mount_id,
                });
            }
            Some(ap) => {
                // The literal path diverged at a symlink: publish an alias
                // child carrying the redirect (§4.2).
                let sig = self.k.dcache.key.finish(&h);
                let ap = ap.clone();
                let name = dentry.name();
                let alias = {
                    let _g = ap.dir_lock().lock();
                    match self.k.dcache.d_lookup(&ap, &name) {
                        Some(a)
                            if a.alias_target()
                                .is_some_and(|(t, s)| Arc::ptr_eq(&t, dentry) && s == t.seq()) =>
                        {
                            a
                        }
                        Some(a) => {
                            // Stale alias: retarget it.
                            a.set_state(DentryState::SymlinkAlias {
                                target: dentry.clone(),
                                target_seq: dentry.seq(),
                            });
                            a
                        }
                        None => {
                            let a = self.k.dcache.d_alloc(
                                &ap,
                                &name,
                                DentryState::SymlinkAlias {
                                    target: dentry.clone(),
                                    target_seq: dentry.seq(),
                                },
                            );
                            self.k
                                .dcache
                                .stats
                                .symlink_aliases
                                .fetch_add(1, Ordering::Relaxed);
                            a
                        }
                    }
                };
                if self.pcc_ok {
                    self.publishes.push(Publish::Pcc {
                        id: alias.id(),
                        seq: alias.seq(),
                    });
                }
                self.publishes.push(Publish::Dlht {
                    dentry: alias.clone(),
                    sig,
                    state: h,
                    mount: mount_id,
                });
                self.alias_parent = Some(alias);
            }
        }
    }

    fn push_path_seg(&mut self, name: &str) {
        if let Some(p) = &mut self.path_str {
            if !p.ends_with('/') {
                p.push('/');
            }
            p.push_str(name);
        }
    }

    fn step_dotdot(&mut self) -> FsResult<()> {
        // Entering ".." still requires search permission on the current
        // directory, and the current position must be a real directory.
        self.ensure_cur_dir()?;
        self.check_exec()?;
        // Stop at the process root (POSIX: ".." at the root is the root).
        if Arc::ptr_eq(&self.cur.dentry, &self.root.dentry)
            && self.cur.mount.id == self.root.mount.id
        {
            return Ok(());
        }
        // Hop over mount roots to the mountpoint, possibly repeatedly.
        let mut pos = self.cur.clone();
        while Arc::ptr_eq(&pos.dentry, &pos.mount.root) {
            match pos.mount.parent.clone() {
                Some((pm, mp)) => pos = PathRef::new(pm, mp),
                None => break, // namespace root: ".." stays put
            }
        }
        if let Some(parent) = pos.dentry.parent() {
            pos = PathRef::new(pos.mount.clone(), parent);
        }
        self.cur = pos;
        // The literal path no longer matches simple extension: reload the
        // canonical state from the parent and drop any alias chain.
        self.alias_parent = None;
        self.hstate = if self.fast {
            self.cur.dentry.hash_state()
        } else {
            None
        };
        if let Some(p) = &mut self.path_str {
            *p = self.k.vfs_path_of(&self.cur);
        }
        Ok(())
    }

    fn enter_symlink(&mut self, link: Arc<Dentry>, _was_last: bool) -> FsResult<()> {
        self.link_depth += 1;
        if self.link_depth > MAX_LINK_DEPTH {
            return Err(FsError::Loop);
        }
        let link_inode = link.inode().ok_or(FsError::NoEnt)?;
        let target = self.fs().readlink(link_inode.ino)?;
        let tparsed = split_path_in(&target, self.k.dcache.config.scratch_arena)?;
        // Literal context to restore afterwards.
        let saved_hstate = self.hstate;
        let saved_alias = self.alias_parent.take();
        // The sub-walk resolves the target path, whose literal form IS
        // canonical; anchor its hash state accordingly.
        if tparsed.absolute {
            self.cur = self.root.clone();
            self.hstate = if self.fast {
                self.cur
                    .dentry
                    .hash_state()
                    .or_else(|| self.k.rebuild_hash_state(&self.cur))
            } else {
                None
            };
            if let Some(p) = &mut self.path_str {
                *p = self.k.vfs_path_of(&self.cur);
            }
        } else {
            self.hstate = if self.fast {
                if saved_alias.is_none() {
                    // `cur` (the dir containing the link) is canonical;
                    // its own stored state anchors the target.
                    self.cur.dentry.hash_state()
                } else {
                    self.cur.dentry.hash_state()
                }
            } else {
                None
            };
        }
        let comps: Vec<&str> = if self.k.dcache.config.lexical_dotdot {
            lexical_simplify(&tparsed.components)
        } else {
            tparsed.components.to_vec()
        };
        self.walk_components(&comps, true)?;
        if tparsed.require_dir {
            self.ensure_cur_dir()?;
        }
        // Record the target's signature in the symlink dentry so the
        // fastpath can chain through it (§4.2).
        if self.fast && self.alias_parent.is_none() {
            if let Some(h) = self.hstate {
                link.store_link_sig(self.k.dcache.key.finish(&h));
            }
        }
        // Restore literal tracking; subsequent components extend the alias
        // chain below the link dentry.
        self.hstate = saved_hstate;
        if self.fast {
            if saved_alias.is_some() {
                // Nested symlink inside an alias chain: stop publishing
                // the literal suffix (rare; correctness unaffected).
                self.alias_parent = None;
                self.hstate = None;
            } else {
                self.alias_parent = Some(link);
            }
        }
        Ok(())
    }
}

enum CurKind {
    Dir,
    Partial,
    NonDir,
    Negative(NegKind),
}

/// Upgrades a partial dentry (readdir-born, §5.1) into a positive one.
pub(crate) fn upgrade_partial(k: &Kernel, mount: &Arc<Mount>, d: &Arc<Dentry>) -> FsResult<()> {
    let parent = d.parent().ok_or(FsError::NoEnt)?;
    let _g = parent.dir_lock().lock();
    let ino = match d.with_state(|s| match s {
        DentryState::Partial { ino, .. } => Some(*ino),
        _ => None,
    }) {
        Some(ino) => ino,
        None => return Ok(()), // someone else upgraded it
    };
    let fs = mount.sb.fs.clone();
    match fs.getattr(ino) {
        Ok(attr) => {
            let inode = k.icache.get_or_create(mount.sb.id, &fs, attr);
            d.set_state(DentryState::Positive(inode));
            Ok(())
        }
        Err(FsError::NoEnt) => {
            // The object vanished below us; the dentry becomes negative.
            k.dcache.make_negative(d, NegKind::Enoent);
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// Plan 9 lexical dot-dot preprocessing (§4.2): `a/../b` → `b`. Leading
/// `..` (above the anchor) are preserved and walked normally.
fn lexical_simplify<'a>(comps: &[&'a str]) -> Vec<&'a str> {
    let mut out: Vec<&'a str> = Vec::with_capacity(comps.len());
    for &c in comps {
        if c == ".." {
            match out.last() {
                Some(&prev) if prev != ".." => {
                    out.pop();
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_simplify_pops_and_preserves_leading() {
        assert_eq!(lexical_simplify(&["a", "..", "b"]), vec!["b"]);
        assert_eq!(lexical_simplify(&["..", "..", "x"]), vec!["..", "..", "x"]);
        assert_eq!(lexical_simplify(&["a", "b", "..", "..", "c"]), vec!["c"]);
        assert_eq!(lexical_simplify(&["a", "..", "..", "b"]), vec!["..", "b"]);
    }
}
