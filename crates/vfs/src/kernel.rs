//! The kernel object: construction and global state.

use crate::icache::Icache;
use crate::mount::{Mount, MountFlags, SuperBlock};
use crate::namespace::MountNamespace;
use crate::path::PathRef;
use crate::process::Process;
use crate::timing::{SyscallClass, SyscallTiming};
use dc_blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dc_cred::{Cred, SecurityStack};
use dc_fs::{FileSystem, FsResult, MemFs, MemFsConfig};
use dc_obs::{MetricSource, MetricsSnapshot, ObsConfig, Recorder, Registry};
use dcache_core::{Dcache, DcacheConfig, ShrinkerRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// The assembled kernel: dcache, security stack, inode cache, mount
/// namespaces, and the syscall surface (implemented across the
/// `syscalls` modules).
pub struct Kernel {
    /// The directory cache (the paper's contribution lives here).
    pub dcache: Arc<Dcache>,
    /// The LSM chain.
    pub security: SecurityStack,
    /// The inode cache.
    pub(crate) icache: Icache,
    /// Per-syscall-class timing (Figure 1).
    pub timing: SyscallTiming,
    namespaces: RwLock<HashMap<u64, Arc<MountNamespace>>>,
    init_ns: Arc<MountNamespace>,
    init_process: Arc<Process>,
    next_sb: AtomicU64,
    next_mount: AtomicU64,
    next_ns: AtomicU64,
    next_pid: AtomicU64,
    /// Serializes whole walks in `lock_walk` mode (the pre-RCU kernel
    /// approximation for the Figure 2 sweep).
    pub(crate) lock_walk_mutex: Mutex<()>,
    /// Entropy pool for mkstemp-style name generation.
    tmp_rng: AtomicU64,
    /// Superblock registry: one superblock (and dentry tree) per mounted
    /// file-system instance, so mount aliases share dentries (§4.3).
    pub(crate) superblocks: Mutex<SuperBlockRegistry>,
    /// Registered memory-pressure shrinkers (the dcache registers itself
    /// at assembly); [`Kernel::memory_pressure`] drives them.
    shrinkers: ShrinkerRegistry,
    /// Extra metric sources registered by components layered on top of
    /// the kernel (e.g. the metadata server); included in
    /// [`Kernel::metrics_registry`] and cleared by
    /// [`Kernel::reset_stats`].
    extra_sources: Mutex<Vec<Arc<dyn MetricSource>>>,
    /// Outcome of the build-time warm restart, when
    /// [`KernelBuilder::warm_restart`] requested one.
    pub(crate) warm_outcome: Mutex<Option<crate::warm::WarmRestartOutcome>>,
}

/// Registered (file system → superblock) pairs; weak on the FS side so
/// an unmounted file system can drop.
pub(crate) type SuperBlockRegistry = Vec<(Weak<dyn FileSystem>, Arc<SuperBlock>)>;

/// Builds a [`Kernel`], mounting a root file system.
pub struct KernelBuilder {
    config: DcacheConfig,
    security: SecurityStack,
    root_fs: Option<Arc<dyn FileSystem>>,
    root_flags: MountFlags,
    obs: Option<ObsConfig>,
    warm_restart: bool,
}

impl KernelBuilder {
    /// Starts a builder with the given dcache configuration, a DAC-only
    /// security stack, and (unless overridden) a fresh memfs root.
    pub fn new(config: DcacheConfig) -> KernelBuilder {
        KernelBuilder {
            config,
            security: SecurityStack::dac_only(),
            root_fs: None,
            root_flags: MountFlags::default(),
            obs: None,
            warm_restart: false,
        }
    }

    /// Attempts a warm restart during [`build`](KernelBuilder::build):
    /// after the root mounts (journal replay included), the dcache is
    /// rehydrated from the on-disk warm index. Any index problem falls
    /// back to a cold cache — `build` never fails because of it. The
    /// outcome is available from [`Kernel::warm_outcome`].
    pub fn warm_restart(mut self, enabled: bool) -> Self {
        self.warm_restart = enabled;
        self
    }

    /// Enables observability: latency histograms, lookup span tracing,
    /// and event counters, recorded throughout the stack. Without this
    /// call the kernel carries a disabled recorder, whose probes reduce
    /// to a branch on a cold flag.
    pub fn observability(mut self, config: ObsConfig) -> Self {
        self.obs = Some(config);
        self
    }

    /// Replaces the security stack.
    pub fn security(mut self, stack: SecurityStack) -> Self {
        self.security = stack;
        self
    }

    /// Uses an explicit root file system instead of a fresh memfs.
    pub fn root_fs(mut self, fs: Arc<dyn FileSystem>) -> Self {
        self.root_fs = Some(fs);
        self
    }

    /// Sets root mount flags.
    pub fn root_flags(mut self, flags: MountFlags) -> Self {
        self.root_flags = flags;
        self
    }

    /// Builds the kernel: mounts the root, creates the init namespace and
    /// the init (root-credentialed) process.
    pub fn build(self) -> FsResult<Arc<Kernel>> {
        let recorder = match self.obs {
            Some(cfg) => Recorder::enabled(cfg),
            None => Recorder::disabled(),
        };
        let dcache = Dcache::new_with_obs(self.config, recorder);
        let root_fs = match self.root_fs {
            Some(fs) => fs,
            None => {
                let disk = Arc::new(CachedDisk::new(DiskConfig {
                    capacity_blocks: 1 << 18, // 1 GiB
                    latency: LatencyModel::free(),
                    ..Default::default()
                }));
                let memfs = MemFs::mkfs(
                    disk,
                    MemFsConfig {
                        max_inodes: 1 << 18,
                        ..Default::default()
                    },
                )?;
                memfs as Arc<dyn FileSystem>
            }
        };
        let kernel = Kernel::assemble(dcache, self.security, root_fs, self.root_flags)?;
        if self.warm_restart {
            let outcome = kernel.warm_restart()?;
            *kernel.warm_outcome.lock() = Some(outcome);
        }
        Ok(kernel)
    }
}

impl Kernel {
    fn assemble(
        dcache: Arc<Dcache>,
        security: SecurityStack,
        root_fs: Arc<dyn FileSystem>,
        root_flags: MountFlags,
    ) -> FsResult<Arc<Kernel>> {
        let icache = Icache::new();
        let sb_id = 1u64;
        let root_attr = root_fs.getattr(root_fs.root_ino())?;
        let root_inode = icache.get_or_create(sb_id, &root_fs, root_attr);
        let root_dentry = dcache.new_root(sb_id, root_inode);
        let sb = Arc::new(SuperBlock {
            id: sb_id,
            fs: root_fs,
            root: root_dentry,
        });
        let root_mount = Mount::new_root(1, sb, root_flags);
        root_mount.root.set_mount_hint(root_mount.id);
        if dcache.obs.is_enabled() {
            if let Some(memfs) = as_memfs(&root_mount.sb.fs) {
                memfs.disk().attach_recorder(dcache.obs.clone());
            }
        }
        let init_ns = MountNamespace::new(0, root_mount.clone());
        let root_ref = PathRef::new(root_mount, init_ns.root_mount().root.clone());
        let init_process =
            Process::new(1, Cred::root(), init_ns.clone(), root_ref.clone(), root_ref);
        let mut namespaces = HashMap::new();
        namespaces.insert(init_ns.id, init_ns.clone());
        let sb_registry: Vec<(Weak<dyn FileSystem>, Arc<SuperBlock>)> = vec![(
            Arc::downgrade(&init_ns.root_mount().sb.fs),
            init_ns.root_mount().sb.clone(),
        )];
        let timing = SyscallTiming::with_recorder(dcache.obs.clone());
        let shrinkers = ShrinkerRegistry::new();
        shrinkers.register(dcache.clone());
        Ok(Arc::new(Kernel {
            dcache,
            security,
            icache,
            timing,
            namespaces: RwLock::new(namespaces),
            init_ns,
            init_process,
            next_sb: AtomicU64::new(2),
            next_mount: AtomicU64::new(2),
            next_ns: AtomicU64::new(1),
            next_pid: AtomicU64::new(2),
            lock_walk_mutex: Mutex::new(()),
            tmp_rng: AtomicU64::new(0x9e3779b97f4a7c15),
            superblocks: Mutex::new(sb_registry),
            shrinkers,
            extra_sources: Mutex::new(Vec::new()),
            warm_outcome: Mutex::new(None),
        }))
    }

    /// The build-time warm-restart outcome, if
    /// [`KernelBuilder::warm_restart`] ran one (`None` otherwise; a
    /// manual [`Kernel::warm_restart`] call returns its outcome
    /// directly).
    pub fn warm_outcome(&self) -> Option<crate::warm::WarmRestartOutcome> {
        self.warm_outcome.lock().clone()
    }

    /// The init process (pid 1, root credentials, at `/`).
    pub fn init_process(&self) -> Arc<Process> {
        self.init_process.clone()
    }

    /// The initial mount namespace.
    pub fn init_namespace(&self) -> Arc<MountNamespace> {
        self.init_ns.clone()
    }

    /// Spawns a process inheriting `parent`'s credentials, namespace,
    /// root, and working directory (`fork` as far as the VFS cares).
    pub fn spawn(&self, parent: &Process) -> Arc<Process> {
        Process::new(
            self.next_pid.fetch_add(1, Ordering::Relaxed),
            parent.cred(),
            parent.namespace(),
            parent.root(),
            parent.cwd(),
        )
    }

    /// Spawns a process with explicit credentials.
    pub fn spawn_with_cred(&self, parent: &Process, cred: Arc<Cred>) -> Arc<Process> {
        let p = self.spawn(parent);
        p.set_cred(cred);
        p
    }

    /// Changes a process's credentials through the prepare/commit cycle;
    /// unchanged contents share the old cred and its PCC (§4.1).
    pub fn setuid(&self, proc: &Process, uid: u32, gid: u32) -> Arc<Cred> {
        let old = proc.cred();
        let mut prepared = dc_cred::prepare_creds(&old);
        prepared.uid = uid;
        prepared.gid = gid;
        let committed = dc_cred::commit_creds(&old, prepared);
        proc.set_cred(committed.clone());
        committed
    }

    /// A pseudo-random value for temporary-file naming.
    pub(crate) fn tmp_rand(&self) -> u64 {
        let x = self
            .tmp_rng
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) & 0xff_ffff
    }

    /// Allocates a superblock id (mounts).
    pub(crate) fn alloc_sb_id(&self) -> u64 {
        self.next_sb.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a mount id.
    pub(crate) fn alloc_mount_id(&self) -> u64 {
        self.next_mount.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a namespace id.
    pub(crate) fn alloc_ns_id(&self) -> u64 {
        self.next_ns.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a namespace.
    pub(crate) fn register_namespace(&self, ns: Arc<MountNamespace>) {
        self.namespaces.write().insert(ns.id, ns);
    }

    /// Live registered namespaces, including the init namespace.
    pub fn namespace_count(&self) -> usize {
        self.namespaces.read().len()
    }

    /// Tears down a mount namespace: unregisters it, detaches every PCC
    /// keyed on it, and retires its DLHT from the dcache's map — all
    /// O(this tenant), never O(fleet).
    ///
    /// The retired table is *not* walked entry-by-entry: dentries hold
    /// only weak membership in it, so dropping the last table handle
    /// (the namespace's memoized one goes with the `Arc<MountNamespace>`
    /// returned here) frees every chain node and bucket group wholesale
    /// once in-flight epoch readers drain. Processes still attached to
    /// the namespace keep their mounts working — only the cache
    /// acceleration (DLHT entries, PCCs) dies with the teardown.
    ///
    /// Returns `None` for the init namespace (id 0) or an unknown id.
    pub fn destroy_namespace(&self, ns_id: u64) -> Option<TeardownReport> {
        if ns_id == 0 {
            return None;
        }
        let start = std::time::Instant::now();
        let ns = self.namespaces.write().remove(&ns_id)?;
        let (pccs_detached, pcc_lines) = self.dcache.detach_pccs_for_ns(ns_id);
        let (dlht_entries, dlht_bytes) = match self.dcache.retire_dlht(ns_id) {
            Some(table) => (table.len(), table.footprint().total_bytes() as u64),
            None => (0, 0), // never walked: no table was ever allocated
        };
        self.dcache
            .stats
            .ns_teardowns
            .fetch_add(1, Ordering::Relaxed);
        self.dcache
            .stats
            .teardown_entries
            .fetch_add(dlht_entries, Ordering::Relaxed);
        self.dcache.obs.event(|| dc_obs::TraceEvent::NsTeardown {
            entries: dlht_entries,
            pccs: pccs_detached as u32,
        });
        drop(ns);
        Some(TeardownReport {
            dlht_entries,
            dlht_bytes,
            pccs_detached,
            pcc_lines,
            nanos: start.elapsed().as_nanos() as u64,
        })
    }

    /// Drops every unpinned dentry and flushes all PCCs and, if the root
    /// file system is a memfs, its page cache: the cold-cache reset used
    /// by Table 2.
    pub fn drop_caches(&self) {
        self.dcache.drop_unused();
        self.dcache.flush_all_pccs();
        for ns in self.namespaces.read().values() {
            for m in ns.mounts_snapshot() {
                let _ = m.sb.fs.sync();
            }
        }
        let root_mount = self.init_ns.root_mount();
        if let Some(memfs) = crate::kernel::as_memfs(&root_mount.sb.fs) {
            memfs.disk().drop_caches();
        }
    }

    /// The memory-pressure shrinker registry. Additional caches can
    /// register themselves; the dcache already has.
    pub fn shrinkers(&self) -> &ShrinkerRegistry {
        &self.shrinkers
    }

    /// Applies memory pressure: asks every registered shrinker to reclaim
    /// until the combined reclaimable footprint fits `budget_bytes` (best
    /// effort — pinned objects survive). Returns the bytes freed. This is
    /// the `echo N > drop_caches`-with-a-budget analog the fault and
    /// pressure experiments drive.
    pub fn memory_pressure(&self, budget_bytes: u64) -> u64 {
        self.shrinkers.pressure(budget_bytes)
    }

    /// Resets every statistics counter (between experiment phases),
    /// including any [registered](Kernel::register_metric_source) extra
    /// sources (e.g. the metadata server's counters).
    pub fn reset_stats(&self) {
        self.dcache.stats.reset();
        self.timing.reset();
        self.dcache.obs.reset();
        let root_mount = self.init_ns.root_mount();
        root_mount.sb.fs.stats().reset();
        if let Some(memfs) = as_memfs(&root_mount.sb.fs) {
            memfs.disk().reset_stats();
            memfs.reset_journal_stats();
        }
        for src in self.extra_sources.lock().iter() {
            src.reset();
        }
    }

    /// Registers an additional [`MetricSource`] to appear in
    /// [`metrics_registry`](Kernel::metrics_registry) snapshots and be
    /// cleared by [`reset_stats`](Kernel::reset_stats). Used by
    /// components layered above the syscall surface (the metadata
    /// server registers its counters and latency histograms here).
    pub fn register_metric_source(&self, source: Arc<dyn MetricSource>) {
        self.extra_sources.lock().push(source);
    }

    /// The kernel-wide observability recorder (disabled unless
    /// [`KernelBuilder::observability`] was used).
    pub fn obs(&self) -> &Recorder {
        &self.dcache.obs
    }

    /// A metrics registry covering the whole stack: dcache counters and
    /// rates, per-syscall-class timing, the root disk's page-cache
    /// counters (when the root is a memfs), plus — when observability is
    /// enabled — the recorder's event counters and latency histograms.
    pub fn metrics_registry(self: &Arc<Self>) -> Registry {
        let mut reg = Registry::new(self.dcache.obs.clone());
        reg.register(Box::new(DcacheMetrics(self.clone())));
        reg.register(Box::new(SyscallMetrics(self.clone())));
        if let Some(memfs) = as_memfs(&self.init_ns.root_mount().sb.fs) {
            reg.register(Box::new(PageCacheMetrics(self.clone())));
            if memfs.journal_stats().is_some() {
                reg.register(Box::new(JournalMetrics(self.clone())));
            }
        }
        for src in self.extra_sources.lock().iter() {
            reg.register(Box::new(SharedSource(src.clone())));
        }
        reg
    }

    /// One-shot [`metrics_registry`](Kernel::metrics_registry) snapshot.
    pub fn metrics_snapshot(self: &Arc<Self>) -> MetricsSnapshot {
        self.metrics_registry().snapshot()
    }
}

/// [`MetricSource`] view of [`Dcache`] behavior counters.
struct DcacheMetrics(Arc<Kernel>);

impl MetricSource for DcacheMetrics {
    fn name(&self) -> &'static str {
        "dcache"
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        self.0.dcache.stats.snapshot()
    }
    fn rates(&self) -> Vec<(&'static str, f64)> {
        let s = &self.0.dcache.stats;
        vec![
            ("hit_rate", s.hit_rate()),
            ("fastpath_rate", s.fastpath_rate()),
            ("neg_hit_rate", s.neg_hit_rate()),
        ]
    }
    fn reset(&self) {
        self.0.dcache.stats.reset();
    }
}

/// [`MetricSource`] view of the per-class syscall timing table.
struct SyscallMetrics(Arc<Kernel>);

impl MetricSource for SyscallMetrics {
    fn name(&self) -> &'static str {
        "syscalls"
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        const KEYS: [(&str, &str); 8] = [
            ("stat_calls", "stat_ns"),
            ("open_calls", "open_ns"),
            ("chmod_chown_calls", "chmod_chown_ns"),
            ("unlink_calls", "unlink_ns"),
            ("other_meta_calls", "other_meta_ns"),
            ("readdir_calls", "readdir_ns"),
            ("io_calls", "io_ns"),
            ("other_calls", "other_ns"),
        ];
        let mut out = Vec::with_capacity(16);
        for (class, (calls_key, ns_key)) in SyscallClass::all().into_iter().zip(KEYS) {
            let (calls, ns) = self.0.timing.get(class);
            out.push((calls_key, calls));
            out.push((ns_key, ns));
        }
        out
    }
    fn reset(&self) {
        self.0.timing.reset();
    }
}

/// [`MetricSource`] view of the root disk's page-cache statistics.
struct PageCacheMetrics(Arc<Kernel>);

impl PageCacheMetrics {
    fn stats(&self) -> dc_blockdev::DiskStats {
        as_memfs(&self.0.init_ns.root_mount().sb.fs)
            .map(|m| m.disk().stats())
            .unwrap_or_default()
    }
}

impl MetricSource for PageCacheMetrics {
    fn name(&self) -> &'static str {
        "pagecache"
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats();
        vec![
            ("cache_hits", s.cache_hits),
            ("cache_misses", s.cache_misses),
            ("device_reads", s.device_reads),
            ("device_writes", s.device_writes),
            ("writebacks", s.writebacks),
            ("simulated_io_ns", s.simulated_io_ns),
            ("resident_pages", s.resident_pages),
            ("io_retries", s.io_retries),
            ("io_errors", s.io_errors),
            ("faults_injected", s.faults_injected),
        ]
    }
    fn reset(&self) {
        if let Some(memfs) = as_memfs(&self.0.init_ns.root_mount().sb.fs) {
            memfs.disk().reset_stats();
        }
    }
}

/// [`MetricSource`] view of the root memfs's metadata journal (only
/// registered when the root is a memfs with journaling on).
struct JournalMetrics(Arc<Kernel>);

impl MetricSource for JournalMetrics {
    fn name(&self) -> &'static str {
        "journal"
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = as_memfs(&self.0.init_ns.root_mount().sb.fs)
            .and_then(|m| m.journal_stats())
            .unwrap_or_default();
        vec![
            ("commits", s.commits),
            ("blocks_logged", s.blocks_logged),
            ("checkpoints", s.checkpoints),
            ("forced_checkpoints", s.forced_checkpoints),
            ("replayed_txns", s.replayed_txns),
        ]
    }
    fn reset(&self) {
        // Journal counters are cumulative since mount; there is nothing
        // safe to zero without losing the replay record.
    }
}

/// Adapts an `Arc`-shared [`MetricSource`] (kept alive by the kernel's
/// registration list) into the boxed form [`Registry`] owns.
struct SharedSource(Arc<dyn MetricSource>);

impl MetricSource for SharedSource {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        self.0.counters()
    }
    fn rates(&self) -> Vec<(&'static str, f64)> {
        self.0.rates()
    }
    fn labeled_counters(&self) -> Vec<(String, u64)> {
        self.0.labeled_counters()
    }
    fn hists(&self) -> Vec<(String, dc_obs::HistSummary)> {
        self.0.hists()
    }
    fn reset(&self) {
        self.0.reset();
    }
}

/// What a [`Kernel::destroy_namespace`] teardown reclaimed.
#[derive(Debug, Clone, Copy, Default)]
pub struct TeardownReport {
    /// Live DLHT entries retired with the namespace's table.
    pub dlht_entries: u64,
    /// Bytes of DLHT structure (bucket array + chain nodes or groups)
    /// freed once the last table handle drops and epochs drain.
    pub dlht_bytes: u64,
    /// PCC instances detached from their credentials.
    pub pccs_detached: u64,
    /// Occupied PCC lines those instances held.
    pub pcc_lines: u64,
    /// Wall-clock nanoseconds the teardown took (map removals and
    /// accounting only — the bulk free happens off this path, at epoch
    /// drain).
    pub nanos: u64,
}

/// Downcasts a file system to memfs (cold-cache plumbing).
pub(crate) fn as_memfs(fs: &Arc<dyn FileSystem>) -> Option<&MemFs> {
    fs.as_any().downcast_ref::<MemFs>()
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("config", &self.dcache.config)
            .field("lsms", &self.security.module_names())
            .field("dentries", &self.dcache.live())
            .finish()
    }
}
