//! The inode cache: one in-memory inode per (superblock, ino).

use dc_fs::{FileSystem, InodeAttr};
use dcache_core::{Inode, SbId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// Deduplicates in-memory inodes so hard links share one object and
/// attribute updates are visible through every path (§2.2's alias list
/// exists for the same reason).
pub struct Icache {
    map: Mutex<HashMap<(SbId, u64), Weak<Inode>>>,
}

impl Icache {
    /// An empty cache.
    pub fn new() -> Icache {
        Icache {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cached inode for `(sb, attr.ino)`, creating it from
    /// `attr` if absent. A cached inode gets its attributes refreshed,
    /// since `attr` was just fetched from the file system.
    pub fn get_or_create(&self, sb: SbId, fs: &Arc<dyn FileSystem>, attr: InodeAttr) -> Arc<Inode> {
        let mut map = self.map.lock();
        if let Some(weak) = map.get(&(sb, attr.ino)) {
            if let Some(inode) = weak.upgrade() {
                inode.store_attr(attr);
                return inode;
            }
        }
        let inode = Inode::new(sb, fs.clone(), attr);
        map.insert((sb, attr.ino), Arc::downgrade(&inode));
        // Opportunistically prune a few dead entries to bound growth.
        if map.len().is_multiple_of(1024) {
            map.retain(|_, w| w.strong_count() > 0);
        }
        inode
    }

    /// Drops the cache entry for a deleted inode.
    pub fn forget(&self, sb: SbId, ino: u64) {
        self.map.lock().remove(&(sb, ino));
    }

    /// Number of (possibly dead) entries.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when the cache is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Icache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_blockdev::{CachedDisk, DiskConfig};
    use dc_fs::MemFs;

    fn testfs() -> Arc<MemFs> {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            capacity_blocks: 4096,
            ..Default::default()
        }));
        MemFs::mkfs(
            disk,
            dc_fs::MemFsConfig {
                max_inodes: 1024,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn same_ino_shares_inode() {
        let fs = testfs();
        let fsdyn: Arc<dyn FileSystem> = fs.clone();
        let ic = Icache::new();
        let a = fs.create(fs.root_ino(), "a", 0o644, 0, 0).unwrap();
        let i1 = ic.get_or_create(1, &fsdyn, a);
        let i2 = ic.get_or_create(1, &fsdyn, a);
        assert!(Arc::ptr_eq(&i1, &i2));
        // Different superblock id → different inode object.
        let i3 = ic.get_or_create(2, &fsdyn, a);
        assert!(!Arc::ptr_eq(&i1, &i3));
    }

    #[test]
    fn refresh_updates_attrs() {
        let fs = testfs();
        let fsdyn: Arc<dyn FileSystem> = fs.clone();
        let ic = Icache::new();
        let a = fs.create(fs.root_ino(), "a", 0o644, 0, 0).unwrap();
        let i1 = ic.get_or_create(1, &fsdyn, a);
        let mut newer = a;
        newer.mode = 0o600;
        let i2 = ic.get_or_create(1, &fsdyn, newer);
        assert!(Arc::ptr_eq(&i1, &i2));
        assert_eq!(i1.attr().mode, 0o600);
    }

    #[test]
    fn dead_entries_can_be_recreated() {
        let fs = testfs();
        let fsdyn: Arc<dyn FileSystem> = fs.clone();
        let ic = Icache::new();
        let a = fs.create(fs.root_ino(), "a", 0o644, 0, 0).unwrap();
        {
            let _i = ic.get_or_create(1, &fsdyn, a);
        }
        let again = ic.get_or_create(1, &fsdyn, a);
        assert_eq!(again.ino, a.ino);
    }

    #[test]
    fn forget_removes_entry() {
        let fs = testfs();
        let fsdyn: Arc<dyn FileSystem> = fs.clone();
        let ic = Icache::new();
        let a = fs.create(fs.root_ino(), "a", 0o644, 0, 0).unwrap();
        let _keep = ic.get_or_create(1, &fsdyn, a);
        assert_eq!(ic.len(), 1);
        ic.forget(1, a.ino);
        assert!(ic.is_empty());
    }
}
