//! Processes: credentials, namespace, working directory, file table.

use crate::handle::Handle;
use crate::namespace::MountNamespace;
use crate::path::PathRef;
use dc_cred::Cred;
use dc_fs::{FsError, FsResult};
use dc_rcu::EpochCell;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum open file descriptors per process.
const FD_LIMIT: usize = 4096;

/// A process, as far as the VFS cares: credentials (copy-on-write,
/// §4.1), a mount namespace, root and current working directories, and a
/// file-descriptor table.
///
/// The fields read on every path lookup (`cred`, `ns`, `root`, `cwd`)
/// are epoch-published so the lock-free fastpath reads them without
/// acquiring anything; the rarely-touched fd table keeps its mutex.
pub struct Process {
    /// Process id.
    pub pid: u64,
    cred: EpochCell<Arc<Cred>>,
    ns: EpochCell<Arc<MountNamespace>>,
    root: EpochCell<PathRef>,
    cwd: EpochCell<PathRef>,
    fds: Mutex<HashMap<u32, Arc<Handle>>>,
    next_fd: Mutex<u32>,
}

impl Process {
    /// Creates a process at the given root/cwd.
    pub fn new(
        pid: u64,
        cred: Arc<Cred>,
        ns: Arc<MountNamespace>,
        root: PathRef,
        cwd: PathRef,
    ) -> Arc<Process> {
        Arc::new(Process {
            pid,
            cred: EpochCell::new(cred),
            ns: EpochCell::new(ns),
            root: EpochCell::new(root),
            cwd: EpochCell::new(cwd),
            fds: Mutex::new(HashMap::new()),
            next_fd: Mutex::new(3), // 0-2 reserved by convention
        })
    }

    /// Current credentials (lock-free).
    pub fn cred(&self) -> Arc<Cred> {
        self.cred.get()
    }

    /// Borrows the credentials under a caller-held epoch guard (the
    /// fastpath's zero-clone read; see [`dc_rcu::EpochCell::read`]).
    pub fn cred_read<'g>(&self, guard: &'g dc_rcu::Guard) -> &'g Arc<Cred> {
        self.cred.read(guard)
    }

    /// Installs committed credentials (`commit_creds`).
    pub fn set_cred(&self, cred: Arc<Cred>) {
        self.cred.set(cred);
    }

    /// Current mount namespace (lock-free).
    pub fn namespace(&self) -> Arc<MountNamespace> {
        self.ns.get()
    }

    /// Borrows the namespace under a caller-held epoch guard.
    pub fn namespace_read<'g>(&self, guard: &'g dc_rcu::Guard) -> &'g Arc<MountNamespace> {
        self.ns.read(guard)
    }

    /// Switches namespace (`unshare`/`setns`).
    pub fn set_namespace(&self, ns: Arc<MountNamespace>) {
        self.ns.set(ns);
    }

    /// The process root (changed by `chroot`; lock-free read).
    pub fn root(&self) -> PathRef {
        self.root.get()
    }

    /// Borrows the root under a caller-held epoch guard.
    pub fn root_read<'g>(&self, guard: &'g dc_rcu::Guard) -> &'g PathRef {
        self.root.read(guard)
    }

    /// Sets the process root.
    pub fn set_root(&self, root: PathRef) {
        self.root.set(root);
    }

    /// Current working directory (lock-free).
    pub fn cwd(&self) -> PathRef {
        self.cwd.get()
    }

    /// Borrows the working directory under a caller-held epoch guard.
    pub fn cwd_read<'g>(&self, guard: &'g dc_rcu::Guard) -> &'g PathRef {
        self.cwd.read(guard)
    }

    /// Sets the working directory (`chdir`). Holding the dentry here pins
    /// it against cache eviction, preserving Unix directory-reference
    /// semantics (§3.2, "Directory References").
    pub fn set_cwd(&self, cwd: PathRef) {
        self.cwd.set(cwd);
    }

    /// Installs a handle, returning its descriptor.
    pub fn install_fd(&self, handle: Arc<Handle>) -> FsResult<u32> {
        let mut fds = self.fds.lock();
        if fds.len() >= FD_LIMIT {
            return Err(FsError::MFile);
        }
        let mut next = self.next_fd.lock();
        while fds.contains_key(&next) {
            *next = next.wrapping_add(1).max(3);
        }
        let fd = *next;
        *next = next.wrapping_add(1).max(3);
        fds.insert(fd, handle);
        Ok(fd)
    }

    /// Resolves a descriptor.
    pub fn fd(&self, fd: u32) -> FsResult<Arc<Handle>> {
        self.fds.lock().get(&fd).cloned().ok_or(FsError::BadF)
    }

    /// Removes a descriptor, returning its handle.
    pub fn take_fd(&self, fd: u32) -> FsResult<Arc<Handle>> {
        self.fds.lock().remove(&fd).ok_or(FsError::BadF)
    }

    /// Number of open descriptors.
    pub fn open_fds(&self) -> usize {
        self.fds.lock().len()
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("uid", &self.cred().uid)
            .field("ns", &self.namespace().id)
            .field("fds", &self.open_fds())
            .finish()
    }
}
