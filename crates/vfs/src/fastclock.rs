//! A cheap monotonic nanosecond clock for per-syscall accounting.
//!
//! `Instant::now()` is a `clock_gettime(CLOCK_MONOTONIC)` vDSO call
//! (~25-30 ns); two of them bracket every syscall for the Figure-1
//! timing table, which is real money on a ~500 ns warm stat (§13). On
//! x86-64 we read the invariant TSC instead (~8 ns) and convert with a
//! ratio calibrated once against the OS clock; other architectures fall
//! back to `Instant`.
//!
//! The TSC read is not serializing, so a stamp can drift by a few
//! cycles relative to surrounding memory operations — fine for
//! accumulated per-class accounting, not for ordering claims.
//!
//! Calibration state is a `Copy` value in a `OnceLock`: first use spins
//! for ~1 ms to measure the tick rate and never allocates (the warm
//! fastpath's zero-allocation guarantee covers timing too).

use std::time::Instant;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::sync::OnceLock;

    /// Nanoseconds per TSC tick, as a (numerator, shift) fixed-point
    /// ratio: `ns = ticks * num >> 24`.
    #[derive(Clone, Copy)]
    struct Calib {
        num: u64,
    }

    const SHIFT: u32 = 24;

    static CALIB: OnceLock<Calib> = OnceLock::new();

    #[inline]
    fn ticks() -> u64 {
        // SAFETY: RDTSC is unprivileged and always available on x86-64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    fn calibrate() -> Calib {
        let w0 = Instant::now();
        let t0 = ticks();
        // ~1 ms busy wait: long enough to swamp the vDSO call latency,
        // short enough to be invisible at process start.
        loop {
            let dt = w0.elapsed();
            if dt.as_micros() >= 1000 {
                let dticks = ticks().wrapping_sub(t0).max(1);
                let ns = dt.as_nanos() as u64;
                let num = ((ns as u128) << SHIFT) / dticks as u128;
                return Calib { num: num as u64 };
            }
            std::hint::spin_loop();
        }
    }

    /// Monotonic stamp in ticks (convert deltas with [`delta_ns`]).
    ///
    /// Ensures calibration has run so the ~1 ms spin never lands inside
    /// a caller's first timed window (the `OnceLock` hit path is a
    /// single acquire load).
    #[inline]
    pub fn now() -> u64 {
        let _ = CALIB.get_or_init(calibrate);
        ticks()
    }

    /// Converts a stamp delta to nanoseconds.
    #[inline]
    pub fn delta_ns(start: u64, end: u64) -> u64 {
        let c = CALIB.get_or_init(calibrate);
        ((end.wrapping_sub(start) as u128 * c.num as u128) >> SHIFT) as u64
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use super::*;
    use std::sync::OnceLock;

    static ANCHOR: OnceLock<Instant> = OnceLock::new();

    /// Monotonic stamp in nanoseconds since an arbitrary anchor.
    #[inline]
    pub fn now() -> u64 {
        ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Converts a stamp delta to nanoseconds.
    #[inline]
    pub fn delta_ns(start: u64, end: u64) -> u64 {
        end.wrapping_sub(start)
    }
}

pub use imp::{delta_ns, now};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_wall_clock_roughly() {
        let t0 = now();
        let w0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let ns = delta_ns(t0, now());
        let wall = w0.elapsed().as_nanos() as u64;
        // Within 25% of the OS clock over 20 ms.
        assert!(ns > wall * 3 / 4 && ns < wall * 5 / 4, "{ns} vs {wall}");
    }

    #[test]
    fn is_monotonic_enough() {
        let mut last = now();
        for _ in 0..10_000 {
            let t = now();
            assert!(delta_ns(last, t) < 1_000_000_000, "clock jumped");
            last = t;
        }
    }
}
