//! The virtual file system layer: path walking and the syscall surface.
//!
//! This crate assembles the substrates (`dc-fs`, `dc-cred`, `dcache-core`)
//! into a kernel-shaped object with a POSIX-flavored, path-based syscall
//! API — the environment the paper's evaluation drives. Two path
//! resolvers coexist, selected by [`dcache_core::DcacheConfig`]:
//!
//! - [`walk`] — the **slowpath**: a faithful Linux-style component-at-a-
//!   time walk (per-component hash-table lookup + permission check),
//!   optimistically synchronized against the global rename seqlock with a
//!   locked fallback, exactly the structure of §2.2. In the baseline
//!   configuration this is the *only* resolver — it is the paper's
//!   "unmodified kernel" comparator.
//! - [`fastwalk`] — the **fastpath** of §3: hash the whole canonical path
//!   (resuming from the anchor dentry's stored state), one DLHT probe, one
//!   PCC probe, one final-object permission check. Any miss falls back to
//!   the slowpath, which repopulates the caches under the §3.2 coherence
//!   protocol.
//!
//! The syscall layer ([`Kernel`]) implements open/stat/access/readdir/
//! mkdir/unlink/rename/chmod/… plus the `*at()` variants, mounts and bind
//! mounts, mount namespaces, chroot, and per-syscall-class timing used by
//! the Figure 1 experiment.
//!
//! # Examples
//!
//! ```
//! use dc_vfs::{KernelBuilder, OpenFlags};
//! use dcache_core::DcacheConfig;
//!
//! let kernel = KernelBuilder::new(DcacheConfig::optimized()).build().unwrap();
//! let proc0 = kernel.init_process();
//! kernel.mkdir(&proc0, "/etc", 0o755).unwrap();
//! let fd = kernel
//!     .open(&proc0, "/etc/passwd", OpenFlags::create(), 0o644)
//!     .unwrap();
//! kernel.write_fd(&proc0, fd, b"root:x:0:0").unwrap();
//! kernel.close(&proc0, fd).unwrap();
//! assert_eq!(kernel.stat(&proc0, "/etc/passwd").unwrap().size, 10);
//! ```

mod fastclock;
mod fastwalk;
mod handle;
mod icache;
mod kernel;
mod mount;
mod namespace;
mod path;
mod process;
mod scratch;
mod serve;
mod syscalls;
mod timing;
mod walk;
mod warm;

pub use handle::{Handle, OpenFlags};
pub use kernel::{Kernel, KernelBuilder, TeardownReport};
pub use mount::{Mount, MountFlags, SuperBlock};
pub use namespace::MountNamespace;
pub use path::{split_path, PathRef, WalkResult};
pub use process::Process;
pub use serve::{LookupReply, SigLookup};
pub use timing::{SyscallClass, SyscallTiming};
pub use warm::{WarmFallback, WarmRestartOutcome};

pub use dc_cred::{Cred, CredBuilder, SecurityStack};
pub use dc_fs::{
    DirEntry, FileSystem, FileType, FsError, FsResult, InodeAttr, SetAttr, WarmEntry, WarmLoad,
    WarmReject,
};
pub use dc_obs::{
    EventKind, HistSummary, LookupOutcome, MetricsSnapshot, ObsConfig, OpClass, Recorder, Registry,
    TraceEvent, TraceRing,
};
pub use dcache_core::{Dcache, DcacheConfig};
