//! Superblocks and mounts.

use dc_fs::FileSystem;
use dcache_core::{Dentry, SbId};
use std::sync::Arc;

/// Per-mount option flags that influence permission checks (§4.3,
/// "Mount options").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MountFlags {
    /// Reject writes through this mount (`EROFS`).
    pub read_only: bool,
    /// Ignore suid/sgid bits on this mount.
    pub nosuid: bool,
    /// Refuse execute permission on regular files on this mount.
    pub noexec: bool,
}

/// One mounted file-system instance (superblock).
///
/// The superblock pins the file system's root dentry, which anchors the
/// in-memory dentry tree for that file system.
pub struct SuperBlock {
    /// Unique superblock id (keys the inode cache).
    pub id: SbId,
    /// The low-level file system.
    pub fs: Arc<dyn FileSystem>,
    /// Root dentry of the file system (pinned).
    pub root: Arc<Dentry>,
}

/// A mount: a superblock (or a subtree of one, for bind mounts) grafted
/// onto a mountpoint (Linux `struct vfsmount`).
pub struct Mount {
    /// Unique mount id within the kernel; the fastpath stores this in each
    /// dentry's mount hint (§4.3).
    pub id: u64,
    /// The mounted superblock.
    pub sb: Arc<SuperBlock>,
    /// Root dentry of this mount: `sb.root` for normal mounts, an interior
    /// dentry for bind mounts.
    pub root: Arc<Dentry>,
    /// Option flags.
    pub flags: MountFlags,
    /// Where this mount hangs: parent mount and mountpoint dentry; `None`
    /// for a namespace's root mount.
    pub parent: Option<(Arc<Mount>, Arc<Dentry>)>,
}

impl Mount {
    /// A namespace root mount.
    pub fn new_root(id: u64, sb: Arc<SuperBlock>, flags: MountFlags) -> Arc<Mount> {
        let root = sb.root.clone();
        Arc::new(Mount {
            id,
            sb,
            root,
            flags,
            parent: None,
        })
    }

    /// A child mount of `parent` at `mountpoint`.
    pub fn new_child(
        id: u64,
        sb: Arc<SuperBlock>,
        root: Arc<Dentry>,
        flags: MountFlags,
        parent: Arc<Mount>,
        mountpoint: Arc<Dentry>,
    ) -> Arc<Mount> {
        Arc::new(Mount {
            id,
            sb,
            root,
            flags,
            parent: Some((parent, mountpoint)),
        })
    }
}

impl std::fmt::Debug for Mount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mount")
            .field("id", &self.id)
            .field("sb", &self.sb.id)
            .field("fs", &self.sb.fs.fs_type())
            .field("flags", &self.flags)
            .field("at", &self.parent.as_ref().map(|(m, d)| (m.id, d.id())))
            .finish()
    }
}
