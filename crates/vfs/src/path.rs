//! Path parsing and walk-result types.

use crate::mount::Mount;
use dc_fs::{FsError, FsResult};
use dcache_core::{Dentry, Inode};
use std::sync::Arc;

/// Maximum accepted path length (Linux `PATH_MAX`).
pub const PATH_MAX: usize = 4096;

/// Maximum accepted component length (Linux `NAME_MAX`).
pub const NAME_MAX: usize = 255;

/// A position in the mounted namespace: a mount plus a dentry within it
/// (Linux's `struct path`).
#[derive(Clone)]
pub struct PathRef {
    /// The vfsmount.
    pub mount: Arc<Mount>,
    /// The dentry.
    pub dentry: Arc<Dentry>,
}

impl PathRef {
    /// Bundles a mount and dentry.
    pub fn new(mount: Arc<Mount>, dentry: Arc<Dentry>) -> Self {
        PathRef { mount, dentry }
    }
}

impl std::fmt::Debug for PathRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PathRef(mount {}, dentry {} {:?})",
            self.mount.id,
            self.dentry.id(),
            self.dentry.name()
        )
    }
}

/// Outcome of a successful path resolution.
///
/// `dentry` may be **negative** when the final component does not exist;
/// callers that need an object (stat, open without `O_CREAT`) convert that
/// to `ENOENT`/`ENOTDIR`, while creating callers use the negative dentry
/// directly.
#[derive(Clone)]
pub struct WalkResult {
    /// Mount the result lives in.
    pub mount: Arc<Mount>,
    /// Final dentry (positive or negative).
    pub dentry: Arc<Dentry>,
    /// The inode for positive results.
    pub inode: Option<Arc<Inode>>,
}

impl WalkResult {
    /// The inode, or the negative dentry's error.
    pub fn require_inode(&self) -> FsResult<&Arc<Inode>> {
        match &self.inode {
            Some(i) => Ok(i),
            None => Err(self
                .dentry
                .neg_kind()
                .map(|k| k.error())
                .unwrap_or(FsError::NoEnt)),
        }
    }

    /// True when the result is a cached absence.
    pub fn is_negative(&self) -> bool {
        self.inode.is_none()
    }
}

/// A parsed path: its components plus trailing-slash semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPath<'a> {
    /// Whether the path is absolute.
    pub absolute: bool,
    /// Raw components, `"."` and `".."` included (canonicalization of
    /// dot-dot is walk-mode-dependent, §4.2).
    pub components: Vec<&'a str>,
    /// Path ended in `/` or `/.` — the final component must be a
    /// directory.
    pub require_dir: bool,
}

/// Splits and validates a path.
///
/// Rejects empty paths (`ENOENT`, POSIX), overlong paths
/// (`ENAMETOOLONG`), overlong components (`ENAMETOOLONG`), and embedded
/// NULs (`EINVAL`). Repeated slashes collapse; `"."` components are
/// dropped except for their trailing-slash effect.
pub fn split_path(path: &str) -> FsResult<ParsedPath<'_>> {
    if path.is_empty() {
        return Err(FsError::NoEnt);
    }
    if path.len() > PATH_MAX {
        return Err(FsError::NameTooLong);
    }
    if path.contains('\0') {
        return Err(FsError::Inval);
    }
    let absolute = path.starts_with('/');
    let mut components = Vec::new();
    let mut require_dir = path.ends_with('/');
    for comp in path.split('/') {
        if comp.is_empty() {
            continue;
        }
        if comp.len() > NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        if comp == "." {
            continue;
        }
        components.push(comp);
    }
    // A trailing "." (e.g. "a/b/.") also requires the target to be a
    // directory, as does "..".
    if let Some(last) = path.rsplit('/').next() {
        if last == "." || last == ".." {
            require_dir = true;
        }
    }
    Ok(ParsedPath {
        absolute,
        components,
        require_dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_collapses() {
        let p = split_path("/usr//lib/./x").unwrap();
        assert!(p.absolute);
        assert_eq!(p.components, vec!["usr", "lib", "x"]);
        assert!(!p.require_dir);
    }

    #[test]
    fn relative_paths() {
        let p = split_path("a/b").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.components, vec!["a", "b"]);
    }

    #[test]
    fn dotdot_is_preserved() {
        let p = split_path("a/../b/..").unwrap();
        assert_eq!(p.components, vec!["a", "..", "b", ".."]);
        assert!(p.require_dir);
    }

    #[test]
    fn trailing_slash_requires_dir() {
        assert!(split_path("a/b/").unwrap().require_dir);
        assert!(split_path("a/b/.").unwrap().require_dir);
        assert!(!split_path("a/b").unwrap().require_dir);
        // Root alone is a directory request.
        let root = split_path("/").unwrap();
        assert!(root.components.is_empty());
        assert!(root.require_dir);
    }

    #[test]
    fn invalid_paths_rejected() {
        assert_eq!(split_path(""), Err(FsError::NoEnt));
        assert_eq!(split_path("a\0b"), Err(FsError::Inval));
        let long_comp = "x".repeat(300);
        assert_eq!(split_path(&long_comp), Err(FsError::NameTooLong));
        let long_path = "a/".repeat(3000);
        assert_eq!(split_path(&long_path), Err(FsError::NameTooLong));
    }
}
