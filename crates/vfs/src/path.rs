//! Path parsing and walk-result types.

use crate::mount::Mount;
use crate::scratch::{InlineVec, INLINE_COMPONENTS};
use dc_fs::{FsError, FsResult};
use dcache_core::{Dentry, Inode};
use std::sync::Arc;

/// Maximum accepted path length (Linux `PATH_MAX`).
pub const PATH_MAX: usize = 4096;

/// Maximum accepted component length (Linux `NAME_MAX`).
pub const NAME_MAX: usize = 255;

/// A position in the mounted namespace: a mount plus a dentry within it
/// (Linux's `struct path`).
#[derive(Clone)]
pub struct PathRef {
    /// The vfsmount.
    pub mount: Arc<Mount>,
    /// The dentry.
    pub dentry: Arc<Dentry>,
}

impl PathRef {
    /// Bundles a mount and dentry.
    pub fn new(mount: Arc<Mount>, dentry: Arc<Dentry>) -> Self {
        PathRef { mount, dentry }
    }
}

impl std::fmt::Debug for PathRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PathRef(mount {}, dentry {} {:?})",
            self.mount.id,
            self.dentry.id(),
            self.dentry.name()
        )
    }
}

/// Outcome of a successful path resolution.
///
/// `dentry` may be **negative** when the final component does not exist;
/// callers that need an object (stat, open without `O_CREAT`) convert that
/// to `ENOENT`/`ENOTDIR`, while creating callers use the negative dentry
/// directly.
#[derive(Clone)]
pub struct WalkResult {
    /// Mount the result lives in.
    pub mount: Arc<Mount>,
    /// Final dentry (positive or negative).
    pub dentry: Arc<Dentry>,
    /// The inode for positive results.
    pub inode: Option<Arc<Inode>>,
}

impl WalkResult {
    /// The inode, or the negative dentry's error.
    pub fn require_inode(&self) -> FsResult<&Arc<Inode>> {
        match &self.inode {
            Some(i) => Ok(i),
            None => Err(self
                .dentry
                .neg_kind()
                .map(|k| k.error())
                .unwrap_or(FsError::NoEnt)),
        }
    }

    /// True when the result is a cached absence.
    pub fn is_negative(&self) -> bool {
        self.inode.is_none()
    }
}

/// A parsed path: its components plus trailing-slash semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPath<'a> {
    /// Whether the path is absolute.
    pub absolute: bool,
    /// Raw components, `"."` and `".."` included (canonicalization of
    /// dot-dot is walk-mode-dependent, §4.2). Stored inline — parsing a
    /// typical path allocates nothing (DESIGN.md §13).
    pub components: InlineVec<&'a str, INLINE_COMPONENTS>,
    /// Path ended in `/` or `/.` — the final component must be a
    /// directory.
    pub require_dir: bool,
}

/// Splits and validates a path with inline component storage.
///
/// Rejects empty paths (`ENOENT`, POSIX), overlong paths
/// (`ENAMETOOLONG`), overlong components (`ENAMETOOLONG`), and embedded
/// NULs (`EINVAL`). Repeated slashes collapse; `"."` components are
/// dropped except for their trailing-slash effect.
pub fn split_path(path: &str) -> FsResult<ParsedPath<'_>> {
    split_path_in(path, true)
}

/// [`split_path`] with an explicit storage mode: `inline: false`
/// reproduces the pre-layout heap-`Vec` behavior (the
/// `scratch_arena: false` ablation in the fig-3 attribution).
pub fn split_path_in(path: &str, inline: bool) -> FsResult<ParsedPath<'_>> {
    if path.is_empty() {
        return Err(FsError::NoEnt);
    }
    if path.len() > PATH_MAX {
        return Err(FsError::NameTooLong);
    }
    let bytes = path.as_bytes();
    let absolute = bytes[0] == b'/';
    let mut components = if inline {
        InlineVec::new()
    } else {
        InlineVec::heap_backed(8)
    };
    // One scan does everything: component boundaries, the embedded-NUL
    // check, and per-component length limits ('/' is ASCII, so slicing
    // at its byte offsets always lands on char boundaries).
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'/' {
            let comp = &path[start..i];
            start = i + 1;
            if comp.len() > NAME_MAX {
                return Err(FsError::NameTooLong);
            }
            // Empty (leading or doubled slash) and "." collapse.
            if !comp.is_empty() && comp != "." {
                components.push(comp);
            }
        } else if b == 0 {
            return Err(FsError::Inval);
        }
    }
    let last = &path[start..];
    if last.len() > NAME_MAX {
        return Err(FsError::NameTooLong);
    }
    if !last.is_empty() && last != "." {
        components.push(last);
    }
    // Trailing '/', "/." or ".." all require the target to be a
    // directory.
    let require_dir = last.is_empty() || last == "." || last == "..";
    Ok(ParsedPath {
        absolute,
        components,
        require_dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_collapses() {
        let p = split_path("/usr//lib/./x").unwrap();
        assert!(p.absolute);
        assert_eq!(p.components, vec!["usr", "lib", "x"]);
        assert!(!p.require_dir);
    }

    #[test]
    fn relative_paths() {
        let p = split_path("a/b").unwrap();
        assert!(!p.absolute);
        assert_eq!(p.components, vec!["a", "b"]);
    }

    #[test]
    fn dotdot_is_preserved() {
        let p = split_path("a/../b/..").unwrap();
        assert_eq!(p.components, vec!["a", "..", "b", ".."]);
        assert!(p.require_dir);
    }

    #[test]
    fn trailing_slash_requires_dir() {
        assert!(split_path("a/b/").unwrap().require_dir);
        assert!(split_path("a/b/.").unwrap().require_dir);
        assert!(!split_path("a/b").unwrap().require_dir);
        // Root alone is a directory request.
        let root = split_path("/").unwrap();
        assert!(root.components.is_empty());
        assert!(root.require_dir);
    }

    #[test]
    fn components_stay_inline_for_typical_paths() {
        let p = split_path("/usr/lib/x86_64/libc/2.31/debug/src").unwrap();
        assert!(!p.components.is_spilled());
        // The ablation mode heap-allocates from the start.
        let p = split_path_in("/usr/lib", false).unwrap();
        assert!(p.components.is_spilled());
        assert_eq!(p.components, vec!["usr", "lib"]);
        // Pathologically deep paths spill and still parse correctly.
        let deep = "a/".repeat(40);
        let p = split_path(&deep).unwrap();
        assert!(p.components.is_spilled());
        assert_eq!(p.components.len(), 40);
    }

    #[test]
    fn invalid_paths_rejected() {
        assert_eq!(split_path(""), Err(FsError::NoEnt));
        assert_eq!(split_path("a\0b"), Err(FsError::Inval));
        let long_comp = "x".repeat(300);
        assert_eq!(split_path(&long_comp), Err(FsError::NameTooLong));
        let long_path = "a/".repeat(3000);
        assert_eq!(split_path(&long_path), Err(FsError::NameTooLong));
    }
}
