//! The fastpath: single-hash-lookup path resolution (§3).
//!
//! A fastpath lookup is: resume the signature hash from the anchor
//! dentry's stored state, feed the components, probe the namespace's DLHT
//! once, validate the memoized prefix check in the credential's PCC, and
//! perform the final object's own permission check inline. *Any* miss —
//! missing hash state, DLHT miss, PCC miss, version mismatch, stale mount
//! hint, partial dentry — falls back to the slowpath, which repopulates
//! the caches (§3.1).
//!
//! Dot-dot components are either preprocessed lexically (Plan 9 mode) or
//! verified with an extra fastpath probe per `..` (POSIX mode), as
//! compared in Figure 6 (§4.2). Symlinks encountered at the final
//! component chain through the link's recorded target signature; literal
//! paths crossing symlinks mid-path hit the alias dentries created by the
//! slowpath (§4.2).

use crate::kernel::Kernel;
use crate::path::{ParsedPath, PathRef, WalkResult};
use crate::process::Process;
use crate::scratch::{InlineVec, INLINE_COMPONENTS};
use dc_cred::MAY_EXEC;
use dc_fs::{FileType, FsError, FsResult};
use dc_obs::TraceEvent;
use dcache_core::{Dentry, HashState, Pcc};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Maximum symlink-signature chain length on the fastpath.
const MAX_LINK_CHAIN: u32 = 40;

/// Maximum optimistic restarts after a per-dentry seq mismatch before
/// giving up and taking the slowpath.
const MAX_READ_RETRIES: u32 = 3;

impl Kernel {
    /// Attempts a direct lookup. `None` means "fall back to the slowpath";
    /// `Some(Err(_))` is a definitive answer (e.g. a negative-dentry hit).
    pub(crate) fn fast_resolve(
        &self,
        proc: &Process,
        start: Option<&PathRef>,
        parsed: &ParsedPath<'_>,
        follow_last: bool,
    ) -> Option<FsResult<WalkResult>> {
        let stats = &self.dcache.stats;
        stats.fast_attempts.fetch_add(1, Ordering::Relaxed);
        // Pin the reclamation epoch once for the whole resolution: every
        // snapshot/chain read below nests under this guard, so retired
        // snapshots and DLHT nodes stay alive while we look at them.
        // Under a batch-scoped pin (server workers) this nests for free
        // and the batch pin already accounted the one EpochPin.
        let in_batch = dcache_core::batch_pin_active();
        let guard = crossbeam_epoch::pin();
        if !in_batch {
            stats.epoch_pins.fetch_add(1, Ordering::Relaxed);
            self.dcache.obs.event(|| TraceEvent::EpochPin);
        }
        // Borrow the per-process lookup state under the pin we already
        // hold — no nested pins, no refcount churn (§13). Values swapped
        // out by a concurrent `chroot`/`setns`/`commit_creds` stay alive
        // until this guard drops.
        let ns = proc.namespace_read(&guard);
        let cred = proc.cred_read(&guard);
        let root = proc.root_read(&guard);
        // The anchor stays a borrow until a ".." climb actually moves it:
        // the common absolute-path lookup never touches the PathRef
        // refcounts (§13).
        let base: &PathRef = if parsed.absolute {
            root
        } else {
            match start {
                Some(s) => s,
                None => proc.cwd_read(&guard),
            }
        };
        let mut anchor_owned: Option<PathRef> = None;
        let pcc_owned;
        let pcc: &Pcc = match self.dcache.pcc_ref(cred, ns.id, &guard) {
            Some(p) => p,
            None => {
                // First lookup for this (cred, ns): attach the PCC once.
                pcc_owned = self.dcache.pcc_for(cred, ns.id);
                &pcc_owned
            }
        };
        let lexical = self.dcache.config.lexical_dotdot;

        // Phase 1: reduce components against the anchor, handling "..".
        // Inline scratch: a warm hit must not touch the heap (§13); the
        // scratch_arena ablation restores the old per-lookup Vec.
        let mut pending: InlineVec<&str, INLINE_COMPONENTS> = if self.dcache.config.scratch_arena {
            InlineVec::new()
        } else {
            InlineVec::heap_backed(parsed.components.len())
        };
        for &c in &parsed.components {
            if c != ".." {
                pending.push(c);
                continue;
            }
            if !lexical {
                // POSIX mode: one extra fastpath permission probe per
                // dot-dot (§4.2).
                let anchor = anchor_owned.as_ref().unwrap_or(base);
                self.posix_dotdot_check(ns, pcc, anchor, &pending, cred, &guard)?;
            }
            if pending.pop().is_none() {
                // Climbing above the anchor.
                let anchor = anchor_owned.as_ref().unwrap_or(base);
                if Arc::ptr_eq(&anchor.dentry, &root.dentry) && anchor.mount.id == root.mount.id {
                    continue; // ".." at the process root stays put
                }
                let climbed = climb_one(anchor)?;
                climbed.dentry.hash_state()?; // must be resumable
                anchor_owned = Some(climbed);
            }
        }
        let anchor = anchor_owned.as_ref().unwrap_or(base);

        // Phase 2: hash the reduced path.
        let mut h: HashState = anchor.dentry.hash_state()?;
        for c in &pending {
            self.dcache.key.push_component(&mut h, c.as_bytes());
        }

        // Anchor-only results (e.g. "/", "a/.." lexical) short-circuit.
        if pending.is_empty() {
            let dentry = anchor.dentry.clone();
            let inode = dentry.inode()?; // partial/negative anchors: fallback
            if parsed.require_dir && !inode.is_dir() {
                return Some(Err(FsError::NotDir));
            }
            stats.fast_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Ok(WalkResult {
                mount: anchor.mount.clone(),
                dentry,
                inode: Some(inode),
            }));
        }

        let sig = self.dcache.key.finish(&h);
        self.fast_validate(ns, pcc, cred, &sig, follow_last, parsed.require_dir, &guard)
    }

    /// Phase 3 of the fastpath: validates a signature against the DLHT
    /// and answers definitively or not at all. Shared by path-keyed
    /// resolution ([`fast_resolve`](Kernel::fast_resolve)) and
    /// signature-keyed server lookups ([`Kernel::lookup_sig`]); the
    /// caller must hold an epoch pin.
    ///
    /// Runs optimistically: dentry fields are read from epoch-published
    /// snapshots, and every terminal answer is revalidated against the
    /// per-dentry seq counter. A mismatch means a writer republished
    /// mid-read — restart from the DLHT probe (bounded; exhaustion
    /// falls back to the slowpath).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fast_validate(
        &self,
        ns: &Arc<crate::namespace::MountNamespace>,
        pcc: &Pcc,
        cred: &dc_cred::Cred,
        sig: &dcache_core::Signature,
        follow_last: bool,
        require_dir: bool,
        guard: &crossbeam_epoch::Guard,
    ) -> Option<FsResult<WalkResult>> {
        let stats = &self.dcache.stats;
        let dlht = ns.dlht(&self.dcache);
        let mut attempts = 0u32;
        'restart: loop {
            if attempts == MAX_READ_RETRIES {
                return None;
            }
            attempts += 1;
            let Some(first) = self.dcache.dlht_lookup_in(dlht, sig, guard) else {
                stats.fast_miss_dlht.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            if self.dcache.config.fastpath_always_miss {
                // Figure 6 synthetic: pay the whole fastpath, then miss at
                // the PCC and fall back.
                stats.fast_miss_pcc.fetch_add(1, Ordering::Relaxed);
                return None;
            }

            // Validate the hit, dereferencing aliases and (when
            // following) chaining through symlink target signatures.
            let mut obj = first;
            let mut chain = 0u32;
            loop {
                chain += 1;
                if chain > MAX_LINK_CHAIN {
                    return Some(Err(FsError::Loop));
                }
                // Prefix check for the literal dentry we matched. On a PCC
                // miss the check may simply "not have executed recently"
                // (§3.1): since a live DLHT entry proves the path mapping is
                // structurally current (structural changes evict entries),
                // the prefix check can be re-executed over the in-memory
                // ancestor chain — far cheaper than the full slowpath. Any
                // doubt (permission failure, odd ancestors, path-sensitive
                // LSMs) still falls back.
                let seq_sample = obj.seq();
                if !pcc.check(obj.id(), seq_sample) {
                    if self
                        .fast_revalidate(ns, pcc, &obj, seq_sample, cred)
                        .is_none()
                    {
                        stats.fast_miss_pcc.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    stats.fast_revalidations.fetch_add(1, Ordering::Relaxed);
                }
                // Alias dentries redirect to the real object (§4.2); the
                // recorded seq pins the translation's validity.
                if let Some((target, target_seq)) = obj.alias_target() {
                    if target.is_dead() || target.seq() != target_seq {
                        stats.fast_miss_seq.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    // The target's own prefix must also be validated (§4.2:
                    // "The PCC is separately checked for the target dentry").
                    obj = target;
                    continue;
                }
                // Final-position symlink: follow via the recorded target
                // signature without touching the link body.
                let is_link = obj
                    .inode()
                    .map(|i| i.ftype() == FileType::Symlink)
                    .unwrap_or(false);
                if is_link && follow_last {
                    let lsig = obj.link_sig()?;
                    let Some(next) = self.dcache.dlht_lookup_in(dlht, &lsig, guard) else {
                        stats.fast_miss_dlht.fetch_add(1, Ordering::Relaxed);
                        return None;
                    };
                    obj = next;
                    continue;
                }
                break;
            }

            // Partial dentries need a slowpath upgrade (one atomic load).
            if obj.is_partial() {
                return None;
            }
            // Terminal reads are sandwiched between two seq samples: if
            // the counter moved, a concurrent rename/chmod/unlink
            // republished this dentry and the answer may be stale.
            let seq_final = obj.seq();
            // Negative hit: a definitive cached absence (§5.2).
            if let Some(kind) = obj.neg_kind() {
                if !self.dcache.config.negative_dentries {
                    return None;
                }
                if obj.is_dead() || obj.seq() != seq_final {
                    stats.read_retries.fetch_add(1, Ordering::Relaxed);
                    self.dcache.obs.event(|| TraceEvent::ReadRetry);
                    continue 'restart;
                }
                stats.fast_neg_hits.fetch_add(1, Ordering::Relaxed);
                stats.fast_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Err(kind.error()));
            }
            let inode = obj.inode()?;
            // Mount validation via the recorded hint (§4.3). Borrowed
            // under the lookup's pin; cloned only once the hit stands.
            let mount = ns.mount_by_id_read(obj.mount_hint(), guard)?;
            if mount.sb.id != obj.sb() || !mount.sb.fs.supports_fastpath() {
                return None;
            }
            if obj.is_dead() || obj.seq() != seq_final {
                stats.read_retries.fetch_add(1, Ordering::Relaxed);
                self.dcache.obs.event(|| TraceEvent::ReadRetry);
                continue 'restart;
            }
            if require_dir && !inode.is_dir() {
                return Some(Err(FsError::NotDir));
            }
            stats.fast_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Ok(WalkResult {
                mount: mount.clone(),
                dentry: obj,
                inode: Some(inode),
            }));
        }
    }

    /// Re-executes a prefix check over the cached ancestor chain of a
    /// DLHT-resident dentry: search permission on every positive ancestor
    /// directory, hopping mounts toward the namespace root. Succeeding
    /// memoizes the result; any irregularity returns `None` and the full
    /// slowpath decides (preserving directory-reference semantics for
    /// cwd-relative access and precise errno reporting).
    fn fast_revalidate(
        &self,
        ns: &crate::namespace::MountNamespace,
        pcc: &Pcc,
        obj: &Arc<Dentry>,
        seq_sample: u64,
        cred: &dc_cred::Cred,
    ) -> Option<()> {
        if self.security.needs_path() {
            return None; // path reconstruction: let the slowpath do it
        }
        let mut mount = ns.mount_by_id(obj.mount_hint())?;
        if mount.sb.id != obj.sb() {
            return None;
        }
        let mut d = obj.clone();
        loop {
            // Hop over mount roots to the mountpoint they cover.
            while Arc::ptr_eq(&d, &mount.root) {
                match mount.parent.clone() {
                    Some((pm, mp)) => {
                        mount = pm;
                        d = mp;
                    }
                    None => return self.finish_revalidate(pcc, obj, seq_sample),
                }
            }
            let parent = d.parent()?;
            // Search permission on every positive ancestor directory;
            // symlink hops in alias chains carry no permission of their
            // own and are skipped, anything unexpected falls back.
            match parent.inode() {
                Some(inode) if inode.is_dir() => {
                    if self.permission(cred, &inode, MAY_EXEC, None).is_err() {
                        return None;
                    }
                }
                Some(inode) if inode.ftype() == FileType::Symlink => {}
                Some(_) => return None,
                None => return None, // negative/partial ancestor: slowpath
            }
            d = parent;
        }
    }

    fn finish_revalidate(&self, pcc: &Pcc, obj: &Arc<Dentry>, seq_sample: u64) -> Option<()> {
        if obj.is_dead() || obj.seq() != seq_sample {
            return None; // raced with an invalidation; be conservative
        }
        pcc.insert(obj.id(), seq_sample);
        Some(())
    }

    /// POSIX-mode dot-dot verification: resolve the prefix built so far
    /// with one extra fastpath probe and re-check permission to search it
    /// (§4.2). Returns `None` to force the slowpath.
    fn posix_dotdot_check(
        &self,
        ns: &crate::namespace::MountNamespace,
        pcc: &Pcc,
        anchor: &PathRef,
        pending: &[&str],
        cred: &dc_cred::Cred,
        guard: &crossbeam_epoch::Guard,
    ) -> Option<()> {
        let dentry: Arc<Dentry> = if pending.is_empty() {
            anchor.dentry.clone()
        } else {
            let mut h: HashState = anchor.dentry.hash_state()?;
            for c in pending {
                self.dcache.key.push_component(&mut h, c.as_bytes());
            }
            let sig = self.dcache.key.finish(&h);
            self.dcache
                .dlht_lookup_in(ns.dlht(&self.dcache), &sig, guard)?
        };
        // The prefix must be a real directory (a symlink prefix needs the
        // slowpath: ".." is relative to the link *target*).
        let inode = dentry.inode()?;
        if !inode.is_dir() {
            return None;
        }
        // Prefix check for the intermediate + inline search permission.
        let at_root = Arc::ptr_eq(&dentry, &ns.root_mount().root);
        if !at_root && !pcc.check(dentry.id(), dentry.seq()) {
            return None;
        }
        if self.permission(cred, &inode, MAY_EXEC, None).is_err() {
            return None; // let the slowpath produce the precise error
        }
        Some(())
    }
}

/// One mount-aware upward step (shared by fastpath anchor climbing).
fn climb_one(at: &PathRef) -> Option<PathRef> {
    let mut pos = at.clone();
    while Arc::ptr_eq(&pos.dentry, &pos.mount.root) {
        match pos.mount.parent.clone() {
            Some((pm, mp)) => pos = PathRef::new(pm, mp),
            None => break,
        }
    }
    match pos.dentry.parent() {
        Some(p) => Some(PathRef::new(pos.mount.clone(), p)),
        None => Some(pos), // namespace root
    }
}
