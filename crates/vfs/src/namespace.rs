//! Mount namespaces (§4.3).

use crate::mount::Mount;
use dc_rcu::{EpochCell, SnapMap};
use dcache_core::{Dcache, DentryId, Dlht, NsId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A mount namespace: a private view of the mount tree.
///
/// Each namespace owns a private direct-lookup hash table (allocated
/// lazily by the dcache keyed on [`MountNamespace::id`]), so the same path
/// and signature resolve to different dentries inside and outside the
/// namespace, and prefix check caches are namespace-private (§4.3).
pub struct MountNamespace {
    /// Namespace id; keys the DLHT and per-cred PCC maps.
    pub id: NsId,
    /// Root mount of the namespace (epoch-published: read on every
    /// absolute lookup without a lock).
    root: EpochCell<Arc<Mount>>,
    /// Mountpoint index: (parent mount id, mountpoint dentry id) → child.
    children: RwLock<HashMap<(u64, DentryId), Arc<Mount>>>,
    /// All mounts by id (fastpath mount-hint validation, §4.3). A
    /// copy-on-write snapshot: the fastpath hint probe is lock-free.
    by_id: SnapMap<u64, Arc<Mount>>,
    /// Cached handle to this namespace's DLHT. The dcache allocates
    /// DLHTs lazily and never replaces a live namespace's table, so the
    /// first fastpath lookup can memoize the handle and every later
    /// lookup skips the dcache's per-namespace map scan. Teardown
    /// ([`Kernel::destroy_namespace`](crate::Kernel::destroy_namespace))
    /// retires the table from the dcache's map; this memoized `Arc` then
    /// keeps the retired table alive only until the last in-flight
    /// reader drops its namespace handle, at which point the table —
    /// and every entry still in it — is freed wholesale.
    dlht: OnceLock<Arc<Dlht>>,
}

impl MountNamespace {
    /// A namespace rooted at `root`.
    pub fn new(id: NsId, root: Arc<Mount>) -> Arc<MountNamespace> {
        let by_id = SnapMap::new();
        by_id.insert(root.id, root.clone());
        Arc::new(MountNamespace {
            id,
            root: EpochCell::new(root),
            children: RwLock::new(HashMap::new()),
            by_id,
            dlht: OnceLock::new(),
        })
    }

    /// This namespace's DLHT, memoized on first use (see the field doc —
    /// sound because the dcache never replaces a live namespace's table).
    pub fn dlht(&self, dcache: &Dcache) -> &Dlht {
        self.dlht_handle(dcache)
    }

    /// The memoized [`Arc`] handle to this namespace's DLHT — for
    /// callers that publish entries and must record *which table* they
    /// inserted into (weak DLHT membership survives teardown; a
    /// namespace id alone would not).
    pub fn dlht_handle(&self, dcache: &Dcache) -> &Arc<Dlht> {
        self.dlht.get_or_init(|| dcache.dlht_for(self.id))
    }

    /// The namespace's root mount (lock-free).
    pub fn root_mount(&self) -> Arc<Mount> {
        self.root.get()
    }

    /// Registers a mount at its mountpoint.
    pub fn add_mount(&self, mount: Arc<Mount>) {
        if let Some((parent, mp)) = &mount.parent {
            self.children
                .write()
                .insert((parent.id, mp.id()), mount.clone());
        }
        self.by_id.insert(mount.id, mount);
    }

    /// Unregisters a mount; returns it if it was present.
    pub fn remove_mount(&self, mount_id: u64) -> Option<Arc<Mount>> {
        let m = self.by_id.remove(mount_id)?;
        if let Some((parent, mp)) = &m.parent {
            self.children.write().remove(&(parent.id, mp.id()));
        }
        Some(m)
    }

    /// The mount hanging at `(parent mount, mountpoint dentry)`, if any —
    /// the walk's mountpoint-crossing probe.
    pub fn mount_at(&self, parent_mount: u64, mountpoint: DentryId) -> Option<Arc<Mount>> {
        self.children
            .read()
            .get(&(parent_mount, mountpoint))
            .cloned()
    }

    /// True if any mount hangs below `mountpoint` under `parent_mount` —
    /// mounted-on directories are busy for rename/rmdir purposes.
    pub fn is_mountpoint(&self, parent_mount: u64, mountpoint: DentryId) -> bool {
        self.children
            .read()
            .contains_key(&(parent_mount, mountpoint))
    }

    /// Resolves a mount id (fastpath mount-hint validation, §4.3;
    /// lock-free).
    pub fn mount_by_id(&self, id: u64) -> Option<Arc<Mount>> {
        self.by_id.get(id)
    }

    /// Borrows the mount for `id` under a caller-held epoch guard — the
    /// fastpath variant of [`mount_by_id`](MountNamespace::mount_by_id)
    /// (no nested pin, no clone until the hit is validated).
    pub fn mount_by_id_read<'g>(
        &self,
        id: u64,
        guard: &'g dc_rcu::Guard,
    ) -> Option<&'g Arc<Mount>> {
        self.by_id.get_ref(id, guard)
    }

    /// Whether this namespace has any child mounts (diagnostics).
    pub fn mount_count(&self) -> usize {
        self.by_id.len()
    }

    /// Snapshot of all mounts (umount -a, namespace teardown).
    pub fn mounts_snapshot(&self) -> Vec<Arc<Mount>> {
        self.by_id.values()
    }
}

impl std::fmt::Debug for MountNamespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MountNamespace")
            .field("id", &self.id)
            .field("mounts", &self.mount_count())
            .finish()
    }
}
