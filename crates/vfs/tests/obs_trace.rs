//! End-to-end observability checks: the trace-event counters recorded
//! on the lookup path must reconcile exactly with the `DcacheStats`
//! counters bumped at the same sites, and the per-op latency
//! histograms must capture the syscalls the workload issued.

use dc_vfs::{EventKind, KernelBuilder, ObsConfig, OpClass, OpenFlags};
use dcache_core::DcacheConfig;
use std::sync::atomic::Ordering;

fn obs_kernel(config: DcacheConfig) -> std::sync::Arc<dc_vfs::Kernel> {
    KernelBuilder::new(config)
        .observability(ObsConfig::default())
        .build()
        .unwrap()
}

#[test]
fn events_reconcile_with_dcache_stats() {
    for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
        let k = obs_kernel(config);
        let p = k.init_process();

        // A workload touching every instrumented path: creates, warm
        // stats, negative lookups, then a cache drop so re-stats go all
        // the way to the file system (miss_fs).
        for d in 0..4 {
            k.mkdir(&p, &format!("/d{d}"), 0o755).unwrap();
            for f in 0..8 {
                let path = format!("/d{d}/f{f}");
                let fd = k.open(&p, &path, OpenFlags::create(), 0o644).unwrap();
                k.write_fd(&p, fd, b"x").unwrap();
                k.close(&p, fd).unwrap();
            }
        }
        for d in 0..4 {
            for f in 0..8 {
                k.stat(&p, &format!("/d{d}/f{f}")).unwrap();
            }
            assert!(k.stat(&p, &format!("/d{d}/missing")).is_err());
        }
        k.drop_caches();
        for d in 0..4 {
            for f in 0..8 {
                k.stat(&p, &format!("/d{d}/f{f}")).unwrap();
            }
        }
        for f in 0..8 {
            k.unlink(&p, &format!("/d0/f{f}")).unwrap();
        }

        let obs = k.obs().obs().expect("recorder is enabled");
        let stats = &k.dcache.stats;
        let ev = |kind| obs.event_count(kind);
        let st = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);

        // Each event fires exactly where its stats counter is bumped.
        assert_eq!(ev(EventKind::LookupStart), st(&stats.lookups));
        assert_eq!(ev(EventKind::SlowStep), st(&stats.slow_steps));
        assert_eq!(ev(EventKind::FsMiss), st(&stats.miss_fs));
        assert_eq!(ev(EventKind::SeqRetry), st(&stats.slow_retries));
        // Every lookup that starts must end, with some outcome.
        let ends = ev(EventKind::LookupEndPositive)
            + ev(EventKind::LookupEndNegative)
            + ev(EventKind::LookupEndError);
        assert_eq!(ends, ev(EventKind::LookupStart));
        // The workload really did take both kinds of path.
        assert!(st(&stats.lookups) > 0);
        assert!(st(&stats.miss_fs) > 0, "cache drop must force fs lookups");
        assert!(ev(EventKind::LookupEndNegative) > 0);

        // DLHT/PCC probes only exist on the fastpath.
        let probes = ev(EventKind::DlhtProbeHit) + ev(EventKind::DlhtProbeMiss);
        if k.dcache.config.fastpath {
            assert!(probes > 0, "optimized config must probe the DLHT");
        } else {
            assert_eq!(probes, 0, "baseline config has no fastpath probes");
        }

        // Histograms captured the ops the workload issued.
        for op in [OpClass::AccessStat, OpClass::Open, OpClass::Unlink] {
            assert!(obs.hist(op).count() > 0, "histogram for {:?} is empty", op);
        }
        assert!(obs.hist(OpClass::AccessStat).max() > 0);

        // The trace ring holds real spans from this workload.
        assert!(!obs.ring().snapshot().is_empty());

        // reset_stats clears events, histograms, and the ring together.
        k.reset_stats();
        assert_eq!(ev(EventKind::LookupStart), 0);
        assert_eq!(obs.hist(OpClass::AccessStat).count(), 0);
        assert!(obs.ring().snapshot().is_empty());
        assert_eq!(st(&stats.lookups), 0);
    }
}

/// The §14 tenancy counters reconcile the same way: every PCC eviction
/// and namespace teardown fires one trace event at the site that bumps
/// the matching `DcacheStats` counter, and `reset_stats` clears both.
#[test]
fn tenancy_events_reconcile_with_stats() {
    let config = DcacheConfig::optimized()
        .with_tenant_buckets(64)
        .with_pcc_max_resident(2);
    let k = obs_kernel(config);
    let init = k.init_process();
    k.mkdir(&init, "/t", 0o755).unwrap();
    for f in 0..6 {
        let fd = k
            .open(&init, &format!("/t/f{f}"), OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&init, fd).unwrap();
    }

    // Three tenants; each namespace walks the tree under four distinct
    // credentials, so 12 PCC attaches squeeze through a cap of 2.
    let mut ns_ids = Vec::new();
    for t in 0..3u32 {
        let proc = k.spawn(&init);
        let ns = k.unshare_ns(&proc).unwrap();
        ns_ids.push(ns.id);
        for c in 0..4u32 {
            proc.set_cred(dc_vfs::Cred::user(3000 + t * 4 + c, 300));
            for f in 0..6 {
                k.stat(&proc, &format!("/t/f{f}")).unwrap();
            }
        }
    }
    let reports: Vec<_> = ns_ids
        .iter()
        .filter_map(|&ns| k.destroy_namespace(ns))
        .collect();
    assert_eq!(reports.len(), 3);

    let obs = k.obs().obs().expect("recorder is enabled");
    let stats = &k.dcache.stats;
    let ev = |kind| obs.event_count(kind);
    let st = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);

    assert!(st(&stats.pcc_evictions) > 0, "cap of 2 must have evicted");
    assert_eq!(ev(EventKind::PccEvict), st(&stats.pcc_evictions));
    assert_eq!(ev(EventKind::NsTeardown), st(&stats.ns_teardowns));
    assert_eq!(st(&stats.ns_teardowns), 3);
    assert_eq!(
        st(&stats.pccs_detached),
        reports.iter().map(|r| r.pccs_detached).sum::<u64>()
    );
    assert_eq!(
        st(&stats.teardown_entries),
        reports.iter().map(|r| r.dlht_entries).sum::<u64>()
    );

    // reset_stats covers the tenancy counters like every other one.
    k.reset_stats();
    assert_eq!(ev(EventKind::PccEvict), 0);
    assert_eq!(ev(EventKind::NsTeardown), 0);
    assert_eq!(st(&stats.pcc_evictions), 0);
    assert_eq!(st(&stats.pccs_detached), 0);
    assert_eq!(st(&stats.ns_teardowns), 0);
    assert_eq!(st(&stats.teardown_entries), 0);
}

/// The warm-restart counters reconcile the same way: one
/// `WarmCheckpoint` event per persisted checkpoint, one `WarmRestart`
/// event per rehydration attempt, each fired at the site that bumps the
/// matching `DcacheStats` counter — and `reset_stats` clears both.
#[test]
fn warm_events_reconcile_with_stats() {
    let k = obs_kernel(DcacheConfig::optimized());
    let p = k.init_process();
    k.mkdir(&p, "/w", 0o755).unwrap();
    for f in 0..5 {
        let fd = k
            .open(&p, &format!("/w/f{f}"), OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&p, fd).unwrap();
    }
    let kept = k.warm_checkpoint().unwrap();
    assert!(kept >= 6, "dir + 5 files expected, kept {kept}");
    let outcome = k.warm_restart().unwrap();
    assert!(outcome.fallback.is_none());
    assert_eq!(outcome.published, outcome.attempted);

    let obs = k.obs().obs().expect("recorder is enabled");
    let stats = &k.dcache.stats;
    let ev = |kind| obs.event_count(kind);
    let st = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);

    assert_eq!(ev(EventKind::WarmCheckpoint), st(&stats.warm_checkpoints));
    assert_eq!(st(&stats.warm_checkpoints), 1);
    assert_eq!(ev(EventKind::WarmRestart), st(&stats.warm_restart_attempts));
    assert_eq!(st(&stats.warm_restart_attempts), 1);
    assert_eq!(st(&stats.warm_restart_published), outcome.published);
    assert_eq!(st(&stats.warm_restart_rejected), outcome.rejected);
    assert_eq!(st(&stats.warm_restart_fallbacks), 0);

    // Both exporters carry the counters under their stable keys.
    let snap = k.metrics_snapshot();
    let json = snap.to_json();
    let text = snap.to_text();
    for key in ["warm_checkpoints", "warm_restart_published"] {
        assert!(json.contains(key), "{key} missing from JSON export");
        assert!(text.contains(key), "{key} missing from text export");
    }

    k.reset_stats();
    assert_eq!(ev(EventKind::WarmCheckpoint), 0);
    assert_eq!(ev(EventKind::WarmRestart), 0);
    assert_eq!(st(&stats.warm_checkpoints), 0);
    assert_eq!(st(&stats.warm_restart_attempts), 0);
    assert_eq!(st(&stats.warm_restart_published), 0);
}

#[test]
fn snapshot_rates_match_stats_helpers() {
    let k = obs_kernel(DcacheConfig::optimized());
    let p = k.init_process();
    k.mkdir(&p, "/a", 0o755).unwrap();
    let fd = k.open(&p, "/a/f", OpenFlags::create(), 0o644).unwrap();
    k.close(&p, fd).unwrap();
    for _ in 0..50 {
        k.stat(&p, "/a/f").unwrap();
    }
    let snap = k.metrics_snapshot();
    let stats = &k.dcache.stats;
    let rate = |key: &str| {
        snap.rates
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("rate {key} missing from snapshot"))
    };
    assert!((rate("dcache.hit_rate") - stats.hit_rate()).abs() < 1e-9);
    assert!((rate("dcache.fastpath_rate") - stats.fastpath_rate()).abs() < 1e-9);
    assert!((rate("dcache.neg_hit_rate") - stats.neg_hit_rate()).abs() < 1e-9);
    // The JSON export carries the histogram section for issued ops.
    let json = snap.to_json();
    assert!(json.contains("\"schema\": \"dcache-metrics/v1\""));
    assert!(json.contains("\"stat\""));
}
