//! End-to-end VFS behavior tests, run against both the baseline and the
//! optimized directory cache (every test body takes the config so both
//! resolvers are exercised).

use dc_fs::FsError;
use dc_vfs::{Kernel, KernelBuilder, OpenFlags, Process};
use dcache_core::DcacheConfig;
use std::sync::Arc;

fn kernel(config: DcacheConfig) -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(config.with_seed(0xDEC0DE))
        .build()
        .unwrap();
    let p = k.init_process();
    (k, p)
}

fn both(test: impl Fn(Arc<Kernel>, Arc<Process>)) {
    for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
        let (k, p) = kernel(config);
        test(k, p);
    }
}

#[test]
fn create_stat_roundtrip() {
    both(|k, p| {
        k.mkdir(&p, "/etc", 0o755).unwrap();
        let fd = k
            .open(&p, "/etc/passwd", OpenFlags::create(), 0o644)
            .unwrap();
        k.write_fd(&p, fd, b"root:x:0:0").unwrap();
        k.close(&p, fd).unwrap();
        let a = k.stat(&p, "/etc/passwd").unwrap();
        assert_eq!(a.size, 10);
        assert_eq!(a.mode, 0o644);
        // Repeat stats hit the cache.
        for _ in 0..5 {
            assert_eq!(k.stat(&p, "/etc/passwd").unwrap().size, 10);
        }
    });
}

#[test]
fn missing_paths_report_enoent_and_enotdir() {
    both(|k, p| {
        k.mkdir(&p, "/d", 0o755).unwrap();
        let fd = k.open(&p, "/d/file", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        assert_eq!(k.stat(&p, "/nope"), Err(FsError::NoEnt));
        assert_eq!(k.stat(&p, "/d/nope"), Err(FsError::NoEnt));
        assert_eq!(k.stat(&p, "/nope/deeper/x"), Err(FsError::NoEnt));
        assert_eq!(k.stat(&p, "/d/file/x"), Err(FsError::NotDir));
        assert_eq!(k.stat(&p, "/d/file/x/y"), Err(FsError::NotDir));
        assert_eq!(k.stat(&p, "/d/file/"), Err(FsError::NotDir));
        // Repeats (likely negative-dentry hits) agree.
        assert_eq!(k.stat(&p, "/d/nope"), Err(FsError::NoEnt));
        assert_eq!(k.stat(&p, "/d/file/x"), Err(FsError::NotDir));
    });
}

#[test]
fn relative_paths_and_chdir() {
    both(|k, p| {
        k.mkdir(&p, "/home", 0o755).unwrap();
        k.mkdir(&p, "/home/alice", 0o755).unwrap();
        let fd = k
            .open(&p, "/home/alice/todo.txt", OpenFlags::create(), 0o600)
            .unwrap();
        k.close(&p, fd).unwrap();
        k.chdir(&p, "/home/alice").unwrap();
        assert_eq!(k.getcwd(&p), "/home/alice");
        assert!(k.stat(&p, "todo.txt").is_ok());
        assert!(k.stat(&p, "./todo.txt").is_ok());
        assert!(k.stat(&p, "../alice/todo.txt").is_ok());
        assert_eq!(k.stat(&p, "nope"), Err(FsError::NoEnt));
        k.chdir(&p, "..").unwrap();
        assert_eq!(k.getcwd(&p), "/home");
        assert!(k.stat(&p, "alice/todo.txt").is_ok());
    });
}

#[test]
fn dotdot_at_root_stays_at_root() {
    both(|k, p| {
        k.mkdir(&p, "/x", 0o755).unwrap();
        assert!(k.stat(&p, "/..").is_ok());
        assert!(k.stat(&p, "/../../x").is_ok());
        k.chdir(&p, "/").unwrap();
        assert!(k.stat(&p, "../x").is_ok());
    });
}

#[test]
fn unlink_then_recreate() {
    both(|k, p| {
        k.mkdir(&p, "/w", 0o755).unwrap();
        let fd = k.open(&p, "/w/f", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        k.unlink(&p, "/w/f").unwrap();
        assert_eq!(k.stat(&p, "/w/f"), Err(FsError::NoEnt));
        assert_eq!(k.unlink(&p, "/w/f"), Err(FsError::NoEnt));
        // Recreate through the (possibly negative) cached dentry.
        let fd = k.open(&p, "/w/f", OpenFlags::create(), 0o600).unwrap();
        k.close(&p, fd).unwrap();
        assert_eq!(k.stat(&p, "/w/f").unwrap().mode, 0o600);
    });
}

#[test]
fn mkdir_rmdir_cycle() {
    both(|k, p| {
        k.mkdir(&p, "/a", 0o755).unwrap();
        k.mkdir(&p, "/a/b", 0o755).unwrap();
        assert_eq!(k.mkdir(&p, "/a", 0o755), Err(FsError::Exist));
        assert_eq!(k.rmdir(&p, "/a"), Err(FsError::NotEmpty));
        k.rmdir(&p, "/a/b").unwrap();
        k.rmdir(&p, "/a").unwrap();
        assert_eq!(k.stat(&p, "/a"), Err(FsError::NoEnt));
        assert_eq!(k.rmdir(&p, "/missing"), Err(FsError::NoEnt));
        // rmdir on a file is ENOTDIR; unlink on a dir is EISDIR.
        let fd = k.open(&p, "/f", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        assert_eq!(k.rmdir(&p, "/f"), Err(FsError::NotDir));
        k.mkdir(&p, "/d", 0o755).unwrap();
        assert_eq!(k.unlink(&p, "/d"), Err(FsError::IsDir));
    });
}

#[test]
fn rename_moves_and_invalidates() {
    both(|k, p| {
        k.mkdir(&p, "/src", 0o755).unwrap();
        k.mkdir(&p, "/src/sub", 0o755).unwrap();
        let fd = k
            .open(&p, "/src/sub/deep.txt", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&p, fd).unwrap();
        // Warm the cache on the old path.
        for _ in 0..3 {
            k.stat(&p, "/src/sub/deep.txt").unwrap();
        }
        k.mkdir(&p, "/dst", 0o755).unwrap();
        k.rename(&p, "/src/sub", "/dst/moved").unwrap();
        assert_eq!(k.stat(&p, "/src/sub/deep.txt"), Err(FsError::NoEnt));
        assert_eq!(k.stat(&p, "/src/sub"), Err(FsError::NoEnt));
        assert!(k.stat(&p, "/dst/moved/deep.txt").is_ok());
        // Rename over an existing file.
        let fd = k.open(&p, "/one", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        let fd = k.open(&p, "/two", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        k.rename(&p, "/one", "/two").unwrap();
        assert_eq!(k.stat(&p, "/one"), Err(FsError::NoEnt));
        assert!(k.stat(&p, "/two").is_ok());
        // Directory into own subtree is EINVAL.
        k.mkdir(&p, "/self", 0o755).unwrap();
        k.mkdir(&p, "/self/inner", 0o755).unwrap();
        assert_eq!(
            k.rename(&p, "/self", "/self/inner/again"),
            Err(FsError::Inval)
        );
    });
}

#[test]
fn symlinks_follow_and_loop() {
    both(|k, p| {
        k.mkdir(&p, "/real", 0o755).unwrap();
        let fd = k
            .open(&p, "/real/data", OpenFlags::create(), 0o644)
            .unwrap();
        k.write_fd(&p, fd, b"hello").unwrap();
        k.close(&p, fd).unwrap();
        k.symlink(&p, "/real", "/alias").unwrap();
        // Follow through a mid-path link.
        assert_eq!(k.stat(&p, "/alias/data").unwrap().size, 5);
        // Repeat (exercises alias caching in the optimized config).
        for _ in 0..4 {
            assert_eq!(k.stat(&p, "/alias/data").unwrap().size, 5);
        }
        // Final-component link: stat follows, lstat does not.
        k.symlink(&p, "/real/data", "/direct").unwrap();
        assert_eq!(k.stat(&p, "/direct").unwrap().size, 5);
        assert_eq!(
            k.lstat(&p, "/direct").unwrap().ftype,
            dc_fs::FileType::Symlink
        );
        assert_eq!(k.readlink_path(&p, "/direct").unwrap(), "/real/data");
        // Relative target.
        k.symlink(&p, "data", "/real/rel").unwrap();
        assert_eq!(k.stat(&p, "/real/rel").unwrap().size, 5);
        // Dangling link.
        k.symlink(&p, "/void", "/dang").unwrap();
        assert_eq!(k.stat(&p, "/dang"), Err(FsError::NoEnt));
        assert!(k.lstat(&p, "/dang").is_ok());
        // Loop.
        k.symlink(&p, "/l2", "/l1").unwrap();
        k.symlink(&p, "/l1", "/l2").unwrap();
        assert_eq!(k.stat(&p, "/l1"), Err(FsError::Loop));
    });
}

#[test]
fn permissions_are_enforced() {
    both(|k, root_proc| {
        k.mkdir(&root_proc, "/open", 0o755).unwrap();
        k.mkdir(&root_proc, "/locked", 0o700).unwrap();
        let fd = k
            .open(&root_proc, "/open/readable", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root_proc, fd).unwrap();
        let fd = k
            .open(&root_proc, "/locked/secret", OpenFlags::create(), 0o600)
            .unwrap();
        k.close(&root_proc, fd).unwrap();
        let alice = k.spawn_with_cred(&root_proc, dc_vfs::Cred::user(1000, 1000));
        assert!(k.stat(&alice, "/open/readable").is_ok());
        // No search permission on /locked.
        assert_eq!(k.stat(&alice, "/locked/secret"), Err(FsError::Access));
        // Repeats stay denied (PCC must not cache failures as success).
        for _ in 0..3 {
            assert_eq!(k.stat(&alice, "/locked/secret"), Err(FsError::Access));
        }
        // Write denied by mode bits.
        assert_eq!(
            k.open(&alice, "/open/readable", OpenFlags::read_write(), 0)
                .unwrap_err(),
            FsError::Access
        );
        // Creating in a read-only-for-alice dir.
        assert_eq!(
            k.open(&alice, "/open/new", OpenFlags::create(), 0o644)
                .unwrap_err(),
            FsError::Access
        );
        // Root can do it all.
        assert!(k.stat(&root_proc, "/locked/secret").is_ok());
    });
}

#[test]
fn chmod_invalidates_cached_prefix_checks() {
    both(|k, root_proc| {
        k.mkdir(&root_proc, "/pub", 0o755).unwrap();
        k.mkdir(&root_proc, "/pub/inner", 0o755).unwrap();
        let fd = k
            .open(&root_proc, "/pub/inner/f", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root_proc, fd).unwrap();
        let alice = k.spawn_with_cred(&root_proc, dc_vfs::Cred::user(1000, 1000));
        // Warm alice's cached prefix checks.
        for _ in 0..3 {
            assert!(k.stat(&alice, "/pub/inner/f").is_ok());
        }
        k.chmod(&root_proc, "/pub", 0o700).unwrap();
        // The cached check must NOT keep granting access.
        assert_eq!(k.stat(&alice, "/pub/inner/f"), Err(FsError::Access));
        k.chmod(&root_proc, "/pub", 0o755).unwrap();
        assert!(k.stat(&alice, "/pub/inner/f").is_ok());
    });
}

#[test]
fn directory_reference_semantics_survive_chmod() {
    both(|k, root_proc| {
        k.mkdir(&root_proc, "/jail", 0o755).unwrap();
        k.mkdir(&root_proc, "/jail/work", 0o777).unwrap();
        let fd = k
            .open(&root_proc, "/jail/work/file", OpenFlags::create(), 0o666)
            .unwrap();
        k.close(&root_proc, fd).unwrap();
        let alice = k.spawn_with_cred(&root_proc, dc_vfs::Cred::user(1000, 1000));
        k.chdir(&alice, "/jail/work").unwrap();
        // Revoke search on the ancestor.
        k.chmod(&root_proc, "/jail", 0o700).unwrap();
        // Absolute access is gone...
        assert_eq!(k.stat(&alice, "/jail/work/file"), Err(FsError::Access));
        // ...but the retained working directory still works (§3.2).
        assert!(k.stat(&alice, "file").is_ok());
        assert!(k.open(&alice, "file", OpenFlags::read_only(), 0).is_ok());
    });
}

#[test]
fn readdir_lists_contents() {
    both(|k, p| {
        k.mkdir(&p, "/list", 0o755).unwrap();
        for i in 0..50 {
            let fd = k
                .open(&p, &format!("/list/f{i:02}"), OpenFlags::create(), 0o644)
                .unwrap();
            k.close(&p, fd).unwrap();
        }
        let entries = k.list_dir(&p, "/list").unwrap();
        assert_eq!(entries.len(), 50);
        let mut names: Vec<_> = entries.iter().map(|e| e.name.clone()).collect();
        names.sort();
        assert_eq!(names[0], "f00");
        assert_eq!(names[49], "f49");
        // Re-listing agrees (served from cache when optimized).
        let again = k.list_dir(&p, "/list").unwrap();
        assert_eq!(again.len(), 50);
        // Listing after a create/unlink stays coherent.
        let fd = k.open(&p, "/list/new", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        k.unlink(&p, "/list/f00").unwrap();
        let third = k.list_dir(&p, "/list").unwrap();
        assert_eq!(third.len(), 50); // -f00 +new
        assert!(third.iter().any(|e| e.name == "new"));
        assert!(!third.iter().any(|e| e.name == "f00"));
    });
}

#[test]
fn hard_links_share_attributes() {
    both(|k, p| {
        let fd = k.open(&p, "/orig", OpenFlags::create(), 0o644).unwrap();
        k.write_fd(&p, fd, b"shared").unwrap();
        k.close(&p, fd).unwrap();
        k.link(&p, "/orig", "/other").unwrap();
        assert_eq!(k.stat(&p, "/other").unwrap().nlink, 2);
        k.chmod(&p, "/other", 0o600).unwrap();
        assert_eq!(k.stat(&p, "/orig").unwrap().mode, 0o600);
        k.unlink(&p, "/orig").unwrap();
        assert_eq!(k.stat(&p, "/other").unwrap().nlink, 1);
        assert_eq!(k.stat(&p, "/orig"), Err(FsError::NoEnt));
    });
}

#[test]
fn openat_and_fstatat_resolve_relative_to_dirfd() {
    both(|k, p| {
        k.mkdir(&p, "/base", 0o755).unwrap();
        k.mkdir(&p, "/base/sub", 0o755).unwrap();
        let fd = k
            .open(&p, "/base/sub/x", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&p, fd).unwrap();
        let dirfd = k.open(&p, "/base", OpenFlags::directory(), 0).unwrap();
        assert!(k.fstatat(&p, dirfd, "sub/x", false).is_ok());
        let f2 = k
            .openat(&p, dirfd, "sub/x", OpenFlags::read_only(), 0)
            .unwrap();
        k.close(&p, f2).unwrap();
        // Absolute paths ignore dirfd.
        assert!(k.fstatat(&p, dirfd, "/base/sub/x", false).is_ok());
        assert_eq!(k.fstatat(&p, dirfd, "missing", false), Err(FsError::NoEnt));
        k.close(&p, dirfd).unwrap();
    });
}

#[test]
fn mkstemp_creates_unique_files() {
    both(|k, p| {
        k.mkdir(&p, "/tmp", 0o777).unwrap();
        let mut names = std::collections::HashSet::new();
        for _ in 0..20 {
            let (fd, name) = k.mkstemp(&p, "/tmp", "tmp-").unwrap();
            assert!(names.insert(name));
            k.close(&p, fd).unwrap();
        }
        assert_eq!(k.list_dir(&p, "/tmp").unwrap().len(), 20);
    });
}

#[test]
fn trailing_slash_semantics() {
    both(|k, p| {
        k.mkdir(&p, "/dir", 0o755).unwrap();
        let fd = k.open(&p, "/file", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        assert!(k.stat(&p, "/dir/").is_ok());
        assert_eq!(k.stat(&p, "/file/"), Err(FsError::NotDir));
        assert_eq!(
            k.open(&p, "/newfile/", OpenFlags::create(), 0o644)
                .unwrap_err(),
            FsError::IsDir
        );
    });
}

#[test]
fn fastpath_actually_hits_in_optimized_mode() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/hot", 0o755).unwrap();
    let fd = k.open(&p, "/hot/file", OpenFlags::create(), 0o644).unwrap();
    k.close(&p, fd).unwrap();
    // First stat warms the caches via the slowpath.
    k.stat(&p, "/hot/file").unwrap();
    let before = k
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..10 {
        k.stat(&p, "/hot/file").unwrap();
    }
    let after = k
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        after >= before + 10,
        "expected 10 fastpath hits, got {}",
        after - before
    );
    // Negative fastpath hits, too.
    assert_eq!(k.stat(&p, "/hot/missing"), Err(FsError::NoEnt));
    let nb = k
        .dcache
        .stats
        .fast_neg_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..5 {
        assert_eq!(k.stat(&p, "/hot/missing"), Err(FsError::NoEnt));
    }
    let na = k
        .dcache
        .stats
        .fast_neg_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(na >= nb + 5, "expected negative fastpath hits");
}

#[test]
fn baseline_never_uses_fastpath() {
    let (k, p) = kernel(DcacheConfig::baseline());
    k.mkdir(&p, "/plain", 0o755).unwrap();
    for _ in 0..5 {
        k.stat(&p, "/plain").unwrap();
    }
    assert_eq!(
        k.dcache
            .stats
            .fast_attempts
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
}

#[test]
fn drop_caches_forces_refill() {
    both(|k, p| {
        k.mkdir(&p, "/cold", 0o755).unwrap();
        let fd = k.open(&p, "/cold/x", OpenFlags::create(), 0o644).unwrap();
        k.close(&p, fd).unwrap();
        k.stat(&p, "/cold/x").unwrap();
        let live_before = k.dcache.live();
        k.drop_caches();
        assert!(k.dcache.live() < live_before);
        // Everything still resolves correctly afterwards.
        assert!(k.stat(&p, "/cold/x").is_ok());
        assert_eq!(k.stat(&p, "/cold/missing"), Err(FsError::NoEnt));
    });
}
