//! Warm-restart integration: end-to-end rehydration correctness, stale
//! entry rejection after post-checkpoint mutations, and the seeded
//! corruption campaign over the on-disk index region.

use dc_blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dc_fs::{fsck, MemFs, MemFsConfig};
use dc_vfs::{Kernel, KernelBuilder, OpenFlags, Process, WarmFallback};
use dcache_core::DcacheConfig;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn mkdisk() -> Arc<CachedDisk> {
    Arc::new(CachedDisk::new(DiskConfig {
        block_size: 4096,
        capacity_blocks: 8192,
        latency: LatencyModel::free(),
        cache_pages: 8192,
    }))
}

fn fresh_fs(disk: Arc<CachedDisk>) -> Arc<MemFs> {
    MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 4096,
            ..Default::default()
        },
    )
    .unwrap()
}

fn kernel_on(fs: Arc<MemFs>, config: DcacheConfig, warm: bool) -> Arc<Kernel> {
    KernelBuilder::new(config)
        .root_fs(fs)
        .warm_restart(warm)
        .build()
        .unwrap()
}

/// Builds a two-level tree, stats every path (so the dcache holds it
/// all), and returns the path → inode shadow map.
fn build_tree(k: &Kernel, p: &Process, dirs: usize, files: usize) -> HashMap<String, u64> {
    let mut shadow = HashMap::new();
    for d in 0..dirs {
        let dir = format!("/d{d}");
        k.mkdir(p, &dir, 0o755).unwrap();
        shadow.insert(dir.clone(), k.stat(p, &dir).unwrap().ino);
        for f in 0..files {
            let path = format!("{dir}/f{f}");
            let fd = k.open(p, &path, OpenFlags::create(), 0o644).unwrap();
            k.close(p, fd).unwrap();
            shadow.insert(path.clone(), k.stat(p, &path).unwrap().ino);
        }
    }
    shadow
}

#[test]
fn rehydration_publishes_validated_tree_and_serves_fastpath_hits() {
    let disk = mkdisk();
    let k1 = kernel_on(fresh_fs(disk.clone()), DcacheConfig::optimized(), false);
    let p1 = k1.init_process();
    let shadow = build_tree(&k1, &p1, 4, 8);
    let kept = k1.warm_checkpoint().unwrap();
    assert!(
        kept >= shadow.len(),
        "checkpointed {kept} < {}",
        shadow.len()
    );
    drop(p1);
    drop(k1);

    // New boot, new (entropy) hash key: everything must be recomputed.
    let fs2 = MemFs::mount(disk).unwrap();
    let k2 = kernel_on(fs2, DcacheConfig::optimized(), true);
    let outcome = k2.warm_outcome().expect("builder ran a warm restart");
    assert!(
        outcome.fallback.is_none(),
        "fallback: {:?}",
        outcome.fallback
    );
    assert_eq!(outcome.rejected, 0, "nothing changed since the checkpoint");
    assert!(
        outcome.published >= shadow.len() as u64,
        "published {} < {}",
        outcome.published,
        shadow.len()
    );
    // The stored signatures were minted under the previous boot's key;
    // with an entropy key they cannot match the recomputed ones.
    assert!(outcome.sig_mismatches > 0, "entropy keys cannot collide");

    // Every rehydrated path resolves to exactly the shadow inode, and
    // entirely from the cache: no backing-fs lookups.
    k2.reset_stats();
    let p2 = k2.init_process();
    for (path, ino) in &shadow {
        assert_eq!(k2.stat(&p2, path).unwrap().ino, *ino, "path {path}");
    }
    let stats = &k2.dcache.stats;
    assert_eq!(
        stats.miss_fs.load(Ordering::Relaxed),
        0,
        "warm cache must serve every lookup without the fs"
    );
    assert!(k2.stat(&p2, "/d0/nope").is_err(), "phantom entry published");
}

#[test]
fn fixed_seed_reuses_signatures_exactly() {
    let disk = mkdisk();
    let cfg = DcacheConfig::optimized().with_seed(42);
    let k1 = kernel_on(fresh_fs(disk.clone()), cfg.clone(), false);
    let shadow = build_tree(&k1, &k1.init_process(), 2, 4);
    k1.warm_checkpoint().unwrap();
    drop(k1);

    let k2 = kernel_on(MemFs::mount(disk).unwrap(), cfg, true);
    let outcome = k2.warm_outcome().unwrap();
    assert_eq!(outcome.published, shadow.len() as u64);
    assert_eq!(
        outcome.sig_mismatches, 0,
        "same seed, same key, same signatures"
    );
}

#[test]
fn stale_entries_are_rejected_not_published() {
    let disk = mkdisk();
    let k1 = kernel_on(fresh_fs(disk.clone()), DcacheConfig::optimized(), false);
    let p1 = k1.init_process();
    k1.mkdir(&p1, "/keep", 0o755).unwrap();
    let fd = k1.open(&p1, "/keep/a", OpenFlags::create(), 0o644).unwrap();
    k1.close(&p1, fd).unwrap();
    k1.mkdir(&p1, "/gone", 0o755).unwrap();
    let fd = k1.open(&p1, "/gone/b", OpenFlags::create(), 0o644).unwrap();
    k1.close(&p1, fd).unwrap();
    let fd = k1.open(&p1, "/ren", OpenFlags::create(), 0o644).unwrap();
    k1.close(&p1, fd).unwrap();
    let keep_ino = k1.stat(&p1, "/keep/a").unwrap().ino;

    k1.warm_checkpoint().unwrap();
    // Mutations after the checkpoint: the index is now stale for these.
    k1.unlink(&p1, "/gone/b").unwrap();
    k1.rename(&p1, "/ren", "/ren2").unwrap();
    drop(p1);
    drop(k1);

    let k2 = kernel_on(MemFs::mount(disk).unwrap(), DcacheConfig::optimized(), true);
    let outcome = k2.warm_outcome().unwrap();
    assert!(outcome.fallback.is_none());
    assert!(
        outcome.rejected >= 2,
        "unlinked and renamed entries must be rejected, got {}",
        outcome.rejected
    );
    let p2 = k2.init_process();
    assert_eq!(k2.stat(&p2, "/keep/a").unwrap().ino, keep_ino);
    assert!(k2.stat(&p2, "/gone/b").is_err(), "stale entry resurrected");
    assert!(k2.stat(&p2, "/ren").is_err(), "renamed-away entry survived");
    assert_eq!(
        k2.stat(&p2, "/ren2").unwrap().ftype,
        dc_vfs::FileType::Regular
    );
}

#[test]
fn absent_index_is_a_typed_cold_fallback() {
    let k = kernel_on(fresh_fs(mkdisk()), DcacheConfig::optimized(), true);
    let outcome = k.warm_outcome().unwrap();
    assert_eq!(outcome.fallback, Some(WarmFallback::Absent));
    assert!(outcome.is_cold());
    // A cold boot still works.
    let p = k.init_process();
    k.mkdir(&p, "/x", 0o755).unwrap();
    assert!(k.stat(&p, "/x").is_ok());
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The corruption campaign: seeded byte flips across the warm-index
/// region. Every mount must either rehydrate clean or fall back cold
/// with a typed outcome — zero panics, zero wrong lookups against the
/// shadow tree, and fsck (index pass included) never flags a
/// checksum-rejected index.
#[test]
fn corruption_campaign_never_panics_or_serves_wrong_lookups() {
    let mut rng: u64 = 0x5eed_24301;
    for trial in 0..40 {
        let disk = mkdisk();
        let k1 = kernel_on(fresh_fs(disk.clone()), DcacheConfig::optimized(), false);
        let shadow = build_tree(&k1, &k1.init_process(), 3, 6);
        k1.warm_checkpoint().unwrap();
        drop(k1);

        // Flip 1..=16 bytes anywhere in the index region.
        let fs_probe = MemFs::mount(disk.clone()).unwrap();
        let geo = *fs_probe.geometry();
        drop(fs_probe);
        let region_blocks = geo.warmidx_blocks;
        let flips = 1 + (xorshift(&mut rng) % 16) as usize;
        for _ in 0..flips {
            let blk = geo.warmidx_start + xorshift(&mut rng) % region_blocks;
            let off = (xorshift(&mut rng) % geo.block_size as u64) as usize;
            let mut data = disk.read_block(blk).unwrap().to_vec();
            data[off] ^= (xorshift(&mut rng) % 255 + 1) as u8;
            disk.write_block(blk, &data).unwrap();
        }

        let k2 = kernel_on(
            MemFs::mount(disk.clone()).unwrap(),
            DcacheConfig::optimized(),
            true,
        );
        let outcome = k2.warm_outcome().unwrap();
        // Whatever was published must agree with the shadow tree.
        let p2 = k2.init_process();
        for (path, ino) in &shadow {
            assert_eq!(
                k2.stat(&p2, path).unwrap().ino,
                *ino,
                "trial {trial}: wrong lookup for {path} (outcome {outcome:?})"
            );
        }
        assert!(
            k2.stat(&p2, "/d0/phantom").is_err(),
            "trial {trial}: phantom entry after corruption"
        );
        // fsck's index pass must not flag a checksum-rejected index, and
        // the metadata tree itself is untouched by index corruption.
        let report = fsck(&disk).unwrap();
        assert!(
            report.is_clean(),
            "trial {trial}: fsck errors {:?}",
            report.errors
        );
    }
}
