//! The disabled recorder must be free: a kernel built without
//! observability takes the same instrumented code paths, but every
//! probe is a single branch on a `None` and no clock is ever read.

use dc_vfs::{KernelBuilder, ObsConfig, OpenFlags};
use dcache_core::DcacheConfig;
use std::time::Instant;

fn stat_ns_per_op(observability: bool) -> f64 {
    let mut b = KernelBuilder::new(DcacheConfig::optimized());
    if observability {
        b = b.observability(ObsConfig::default());
    }
    let k = b.build().unwrap();
    let p = k.init_process();
    k.mkdir(&p, "/a", 0o755).unwrap();
    k.mkdir(&p, "/a/b", 0o755).unwrap();
    let fd = k.open(&p, "/a/b/f", OpenFlags::create(), 0o644).unwrap();
    k.close(&p, fd).unwrap();
    // Warm everything, then time a tight stat loop.
    for _ in 0..1000 {
        k.stat(&p, "/a/b/f").unwrap();
    }
    let iters = 200_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        k.stat(&p, "/a/b/f").unwrap();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

#[test]
fn disabled_recorder_adds_no_measurable_overhead() {
    // Interleave measurements to cancel machine-wide drift.
    let mut off = f64::MAX;
    let mut on = f64::MAX;
    for _ in 0..3 {
        off = off.min(stat_ns_per_op(false));
        on = on.min(stat_ns_per_op(true));
    }
    println!("stat ns/op: observability off {off:.0}, on {on:.0}");
    // The disabled path must not be slower than the enabled path by
    // any margin timing noise cannot explain. (The enabled path does
    // strictly more work — two clock reads and a histogram update per
    // syscall — so `off` beating `on` by a wide margin would equally
    // indicate a broken gate.)
    assert!(
        off <= on * 1.5 + 200.0,
        "disabled recorder looks expensive: off {off:.0} ns vs on {on:.0} ns"
    );
}

#[test]
fn disabled_recorder_reports_disabled() {
    let k = KernelBuilder::new(DcacheConfig::optimized())
        .build()
        .unwrap();
    assert!(!k.obs().is_enabled());
    assert!(k.obs().obs().is_none());
    // Snapshot still works: counter sections only, no events/hists.
    let p = k.init_process();
    k.mkdir(&p, "/x", 0o755).unwrap();
    let snap = k.metrics_snapshot();
    assert!(snap.sections.iter().all(|s| s.name != "events"));
    assert!(snap.hists.is_empty());
    assert!(snap.sections.iter().any(|s| s.name == "dcache"));
}
