//! Integration tests for the span-trace ring buffer: overwrite-oldest
//! semantics through the public API, and thread-safety under heavy
//! concurrent writers.

use dc_obs::{LookupOutcome, TraceEvent, TraceRing};
use std::sync::Arc;

fn end(ns: u64) -> TraceEvent {
    TraceEvent::LookupEnd {
        outcome: LookupOutcome::Positive,
        ns,
    }
}

#[test]
fn keeps_only_the_newest_capacity_events() {
    let ring = TraceRing::new(16);
    for i in 0..100u64 {
        ring.push(dc_obs::current_tid(), end(i));
    }
    assert_eq!(ring.pushed(), 100);
    let spans = ring.snapshot();
    assert_eq!(spans.len(), 16);
    // Oldest-first, contiguous, and exactly the last 16 pushes.
    let ns_of = |s: &dc_obs::Span| match s.event {
        TraceEvent::LookupEnd { ns, .. } => ns,
        _ => panic!("unexpected event"),
    };
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(ns_of(s), 84 + i as u64);
    }
    for w in spans.windows(2) {
        assert!(w[0].seq < w[1].seq, "snapshot must be ordered by seq");
    }
}

#[test]
fn concurrent_writers_preserve_ring_invariants() {
    let ring = Arc::new(TraceRing::new(128));
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..per_thread {
                    ring.push(t as u32 + 1, end(t * per_thread + i));
                }
            });
        }
    });
    assert_eq!(ring.pushed(), threads * per_thread);
    let spans = ring.snapshot();
    assert_eq!(spans.len(), 128, "ring must be full after 80k pushes");
    // Sequence numbers are unique, increasing, and recent: with racing
    // writers a slot may retain a span slightly older than the absolute
    // newest `capacity`, but never older than a small constant factor.
    for w in spans.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
    let oldest = spans.first().unwrap().seq;
    assert!(
        oldest >= ring.pushed() - 4 * 128,
        "retained span too old: seq {oldest} of {}",
        ring.pushed()
    );
    // Every retained thread id is one the writers actually used.
    for s in &spans {
        assert!(s.tid > 0, "tid must be assigned");
    }
}

#[test]
fn reset_clears_but_ring_remains_usable() {
    let ring = TraceRing::new(8);
    for i in 0..20 {
        ring.push(dc_obs::current_tid(), end(i));
    }
    ring.reset();
    assert_eq!(ring.pushed(), 0);
    assert!(ring.snapshot().is_empty());
    ring.push(dc_obs::current_tid(), TraceEvent::LookupStart);
    assert_eq!(ring.snapshot().len(), 1);
}
