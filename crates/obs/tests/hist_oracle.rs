//! Property-style oracle tests for the log-linear histogram: random
//! sample streams are recorded into the histogram and into a plain
//! sorted vector, and every derived statistic must agree within the
//! histogram's documented 1/32 relative bucket-width bound.
//!
//! (The crates.io `proptest` crate is unavailable in the offline build,
//! so these use a deterministic seeded generator — same shape: many
//! random cases, an exact oracle, and tight tolerances.)

use dc_obs::LatencyHist;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The exact oracle: nearest-rank percentile over a sorted copy.
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// |got - want| must be within 1/32 of want (plus 1 ns of slack for
/// the sub-linear region's integer bucket edges).
fn assert_close(got: u64, want: u64, what: &str) {
    let tol = want / 32 + 1;
    assert!(
        got.abs_diff(want) <= tol,
        "{what}: histogram said {got}, oracle said {want} (tolerance {tol})"
    );
}

/// Draws a sample stream whose magnitude spans many histogram groups:
/// each draw picks a random bit-width first, then a value of that
/// width, so small and huge values are equally likely.
fn random_samples(rng: &mut Rng, n: usize, max_bits: u32) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let bits = rng.below(max_bits as u64) as u32 + 1;
            rng.next() >> (64 - bits)
        })
        .collect()
}

#[test]
fn percentiles_match_sorted_vec_oracle() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for case in 0..50 {
        let n = 1 + rng.below(4000) as usize;
        let max_bits = 8 + rng.below(50) as u32;
        let samples = random_samples(&mut rng, n, max_bits);
        let h = LatencyHist::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        assert_eq!(h.count(), n as u64, "case {case}: count");
        assert_eq!(h.max(), *sorted.last().unwrap(), "case {case}: max");
        let exact_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let got_mean = h.mean();
        assert!(
            (got_mean - exact_mean).abs() <= exact_mean / 1e6 + 1e-6,
            "case {case}: mean {got_mean} vs {exact_mean}"
        );
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let want = oracle_percentile(&sorted, q);
            let got = h.percentile(q);
            assert_close(got, want, &format!("case {case}: p{}", q * 100.0));
            // The histogram must never report above the observed max.
            assert!(got <= h.max(), "case {case}: p{} above max", q * 100.0);
        }
    }
}

#[test]
fn merge_equals_recording_both_streams() {
    let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
    for case in 0..20 {
        let na = 500 + rng.below(1500) as usize;
        let nb = 500 + rng.below(1500) as usize;
        let a = random_samples(&mut rng, na, 40);
        let b = random_samples(&mut rng, nb, 40);
        let ha = LatencyHist::new();
        let hb = LatencyHist::new();
        let combined = LatencyHist::new();
        for &s in &a {
            ha.record(s);
            combined.record(s);
        }
        for &s in &b {
            hb.record(s);
            combined.record(s);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), combined.count(), "case {case}: merged count");
        assert_eq!(ha.max(), combined.max(), "case {case}: merged max");
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                ha.percentile(q),
                combined.percentile(q),
                "case {case}: merged p{} differs from single-stream recording",
                q * 100.0
            );
        }
    }
}

#[test]
fn degenerate_streams() {
    // All-identical samples: every percentile is that sample.
    let h = LatencyHist::new();
    for _ in 0..1000 {
        h.record(7777);
    }
    for q in [0.01, 0.5, 0.999, 1.0] {
        assert_close(h.percentile(q), 7777, "identical samples");
    }
    // Zeros are representable exactly.
    let z = LatencyHist::new();
    z.record(0);
    assert_eq!(z.percentile(0.5), 0);
    assert_eq!(z.max(), 0);
    // u64::MAX does not overflow the bucket math.
    let m = LatencyHist::new();
    m.record(u64::MAX);
    assert_eq!(m.max(), u64::MAX);
    assert_eq!(m.percentile(1.0), u64::MAX);
}
