//! Observability for the directory-cache reproduction: latency
//! histograms, lookup-path span tracing, and a unified metrics registry.
//!
//! The paper's argument is quantitative — every evaluation section asks
//! *where* a path lookup spent its time (DLHT probe, PCC check, seq
//! revalidation, slowpath steps, FS miss, block I/O). This crate is the
//! measurement substrate the rest of the workspace instruments itself
//! with:
//!
//! - [`LatencyHist`] — log-linear (HDR-style) histograms: power-of-two
//!   major buckets, 32 linear sub-buckets each, lock-free `AtomicU64`
//!   cells, mergeable across threads, p50/p90/p99/p999 + mean
//!   extraction with ≤ 1/32 relative bucket error.
//! - [`TraceRing`] — a fixed-capacity, overwrite-oldest span buffer of
//!   typed [`TraceEvent`]s, so a single slow lookup can be
//!   reconstructed end-to-end from its event sequence.
//! - [`Recorder`] — the handle hot paths hold. A disabled recorder is
//!   `None` inside; every probe is one branch on that cold value and
//!   the event payload is never even constructed (closure argument).
//! - [`Registry`] / [`MetricsSnapshot`] — unify component counters
//!   ([`MetricSource`] implementors), the recorder's histograms, and
//!   its event counts under one snapshot/reset API with JSON
//!   ([`MetricsSnapshot::to_json`]) and aligned-text
//!   ([`MetricsSnapshot::to_text`]) exporters.
//!
//! Layering: this crate depends on nothing in the workspace, so every
//! layer (blockdev, core, vfs, bench) can record into it.

mod hist;
mod recorder;
mod registry;
mod trace;

pub use hist::{HistSummary, LatencyHist};
pub use recorder::{current_tid, EventKind, Obs, ObsConfig, OpClass, Recorder};
pub use registry::{MetricSource, MetricsSnapshot, Registry, Section};
pub use trace::{FaultClass, LookupOutcome, Span, TraceEvent, TraceRing};
