//! The [`Recorder`] handle hot paths hold, and the shared [`Obs`] sink
//! behind it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::hist::LatencyHist;
use crate::trace::{LookupOutcome, TraceEvent, TraceRing};

pub use crate::trace::current_tid;

/// Operation classes latency histograms are keyed by. Mirrors the VFS
/// syscall classification so timing data lands in the same buckets the
/// paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `access`/`stat`-style existence and attribute reads.
    AccessStat,
    /// `open` (and `create`).
    Open,
    /// `chmod`/`chown` metadata writes.
    ChmodChown,
    /// `unlink`/`rmdir` removals.
    Unlink,
    /// Other metadata ops (`mkdir`, `rename`, `link`, `symlink`, ...).
    OtherMeta,
    /// Directory reads.
    Readdir,
    /// Data I/O (`read`/`write`).
    Io,
    /// Everything else.
    Other,
}

impl OpClass {
    /// Dense index for array storage.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            OpClass::AccessStat => 0,
            OpClass::Open => 1,
            OpClass::ChmodChown => 2,
            OpClass::Unlink => 3,
            OpClass::OtherMeta => 4,
            OpClass::Readdir => 5,
            OpClass::Io => 6,
            OpClass::Other => 7,
        }
    }

    /// Every class, in index order.
    pub fn all() -> [OpClass; 8] {
        [
            OpClass::AccessStat,
            OpClass::Open,
            OpClass::ChmodChown,
            OpClass::Unlink,
            OpClass::OtherMeta,
            OpClass::Readdir,
            OpClass::Io,
            OpClass::Other,
        ]
    }

    /// Stable snake_case key used in JSON exports and column headers.
    pub fn key(self) -> &'static str {
        match self {
            OpClass::AccessStat => "stat",
            OpClass::Open => "open",
            OpClass::ChmodChown => "chmod_chown",
            OpClass::Unlink => "unlink",
            OpClass::OtherMeta => "other_meta",
            OpClass::Readdir => "readdir",
            OpClass::Io => "io",
            OpClass::Other => "other",
        }
    }
}

/// Flat classification of [`TraceEvent`]s for cheap global counting;
/// payload-carrying events split by their boolean outcome so the counts
/// reconcile directly against `DcacheStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// `LookupStart`.
    LookupStart,
    /// `DlhtProbe { hit: true }`.
    DlhtProbeHit,
    /// `DlhtProbe { hit: false }`.
    DlhtProbeMiss,
    /// `PccCheck { hit: true, .. }`.
    PccHit,
    /// `PccCheck { hit: false, stale: true }`.
    PccStale,
    /// `PccCheck { hit: false, stale: false }`.
    PccMiss,
    /// `SeqRetry`.
    SeqRetry,
    /// `EpochPin`.
    EpochPin,
    /// `ReadRetry`.
    ReadRetry,
    /// `SlowStep`.
    SlowStep,
    /// `FsMiss`.
    FsMiss,
    /// `BlockIo`.
    BlockIo,
    /// `LookupEnd` with a positive outcome.
    LookupEndPositive,
    /// `LookupEnd` with a negative outcome.
    LookupEndNegative,
    /// `LookupEnd` with an error outcome.
    LookupEndError,
    /// `FaultInjected` (any class).
    FaultInjected,
    /// `IoRetry`.
    IoRetry,
    /// `Shrink`.
    Shrink,
    /// `JournalCommit`.
    JournalCommit,
    /// `JournalReplay`.
    JournalReplay,
    /// `JournalCheckpoint`.
    JournalCheckpoint,
    /// `ServeBatch`.
    ServeBatch,
    /// `ServeReject`.
    ServeReject,
    /// `ServeConn`.
    ServeConn,
    /// `PccEvict`.
    PccEvict,
    /// `NsTeardown`.
    NsTeardown,
    /// `WarmCheckpoint`.
    WarmCheckpoint,
    /// `WarmRestart`.
    WarmRestart,
}

impl EventKind {
    /// Number of kinds (length of the counter array).
    pub const COUNT: usize = 28;

    /// Every kind, in index order.
    pub fn all() -> [EventKind; EventKind::COUNT] {
        [
            EventKind::LookupStart,
            EventKind::DlhtProbeHit,
            EventKind::DlhtProbeMiss,
            EventKind::PccHit,
            EventKind::PccStale,
            EventKind::PccMiss,
            EventKind::SeqRetry,
            EventKind::EpochPin,
            EventKind::ReadRetry,
            EventKind::SlowStep,
            EventKind::FsMiss,
            EventKind::BlockIo,
            EventKind::LookupEndPositive,
            EventKind::LookupEndNegative,
            EventKind::LookupEndError,
            EventKind::FaultInjected,
            EventKind::IoRetry,
            EventKind::Shrink,
            EventKind::JournalCommit,
            EventKind::JournalReplay,
            EventKind::JournalCheckpoint,
            EventKind::ServeBatch,
            EventKind::ServeReject,
            EventKind::ServeConn,
            EventKind::PccEvict,
            EventKind::NsTeardown,
            EventKind::WarmCheckpoint,
            EventKind::WarmRestart,
        ]
    }

    /// Dense index for array storage.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            EventKind::LookupStart => 0,
            EventKind::DlhtProbeHit => 1,
            EventKind::DlhtProbeMiss => 2,
            EventKind::PccHit => 3,
            EventKind::PccStale => 4,
            EventKind::PccMiss => 5,
            EventKind::SeqRetry => 6,
            EventKind::EpochPin => 7,
            EventKind::ReadRetry => 8,
            EventKind::SlowStep => 9,
            EventKind::FsMiss => 10,
            EventKind::BlockIo => 11,
            EventKind::LookupEndPositive => 12,
            EventKind::LookupEndNegative => 13,
            EventKind::LookupEndError => 14,
            EventKind::FaultInjected => 15,
            EventKind::IoRetry => 16,
            EventKind::Shrink => 17,
            EventKind::JournalCommit => 18,
            EventKind::JournalReplay => 19,
            EventKind::JournalCheckpoint => 20,
            EventKind::ServeBatch => 21,
            EventKind::ServeReject => 22,
            EventKind::ServeConn => 23,
            EventKind::PccEvict => 24,
            EventKind::NsTeardown => 25,
            EventKind::WarmCheckpoint => 26,
            EventKind::WarmRestart => 27,
        }
    }

    /// Stable snake_case key used in JSON exports.
    pub fn key(self) -> &'static str {
        match self {
            EventKind::LookupStart => "lookup_start",
            EventKind::DlhtProbeHit => "dlht_probe_hit",
            EventKind::DlhtProbeMiss => "dlht_probe_miss",
            EventKind::PccHit => "pcc_hit",
            EventKind::PccStale => "pcc_stale",
            EventKind::PccMiss => "pcc_miss",
            EventKind::SeqRetry => "seq_retry",
            EventKind::EpochPin => "epoch_pin",
            EventKind::ReadRetry => "read_retry",
            EventKind::SlowStep => "slow_step",
            EventKind::FsMiss => "fs_miss",
            EventKind::BlockIo => "block_io",
            EventKind::LookupEndPositive => "lookup_end_positive",
            EventKind::LookupEndNegative => "lookup_end_negative",
            EventKind::LookupEndError => "lookup_end_error",
            EventKind::FaultInjected => "fault_injected",
            EventKind::IoRetry => "io_retry",
            EventKind::Shrink => "shrink",
            EventKind::JournalCommit => "journal_commit",
            EventKind::JournalReplay => "journal_replay",
            EventKind::JournalCheckpoint => "journal_checkpoint",
            EventKind::ServeBatch => "serve_batch",
            EventKind::ServeReject => "serve_reject",
            EventKind::ServeConn => "serve_conn",
            EventKind::PccEvict => "pcc_evict",
            EventKind::NsTeardown => "ns_teardown",
            EventKind::WarmCheckpoint => "warm_checkpoint",
            EventKind::WarmRestart => "warm_restart",
        }
    }

    fn of(event: &TraceEvent) -> EventKind {
        match event {
            TraceEvent::LookupStart => EventKind::LookupStart,
            TraceEvent::DlhtProbe { hit: true } => EventKind::DlhtProbeHit,
            TraceEvent::DlhtProbe { hit: false } => EventKind::DlhtProbeMiss,
            TraceEvent::PccCheck { hit: true, .. } => EventKind::PccHit,
            TraceEvent::PccCheck {
                hit: false,
                stale: true,
            } => EventKind::PccStale,
            TraceEvent::PccCheck {
                hit: false,
                stale: false,
            } => EventKind::PccMiss,
            TraceEvent::SeqRetry => EventKind::SeqRetry,
            TraceEvent::EpochPin => EventKind::EpochPin,
            TraceEvent::ReadRetry => EventKind::ReadRetry,
            TraceEvent::SlowStep { .. } => EventKind::SlowStep,
            TraceEvent::FsMiss => EventKind::FsMiss,
            TraceEvent::BlockIo { .. } => EventKind::BlockIo,
            TraceEvent::LookupEnd {
                outcome: LookupOutcome::Positive,
                ..
            } => EventKind::LookupEndPositive,
            TraceEvent::LookupEnd {
                outcome: LookupOutcome::Negative,
                ..
            } => EventKind::LookupEndNegative,
            TraceEvent::LookupEnd {
                outcome: LookupOutcome::Error,
                ..
            } => EventKind::LookupEndError,
            TraceEvent::FaultInjected { .. } => EventKind::FaultInjected,
            TraceEvent::IoRetry { .. } => EventKind::IoRetry,
            TraceEvent::Shrink { .. } => EventKind::Shrink,
            TraceEvent::JournalCommit { .. } => EventKind::JournalCommit,
            TraceEvent::JournalReplay { .. } => EventKind::JournalReplay,
            TraceEvent::JournalCheckpoint => EventKind::JournalCheckpoint,
            TraceEvent::ServeBatch { .. } => EventKind::ServeBatch,
            TraceEvent::ServeReject { .. } => EventKind::ServeReject,
            TraceEvent::ServeConn => EventKind::ServeConn,
            TraceEvent::PccEvict => EventKind::PccEvict,
            TraceEvent::NsTeardown { .. } => EventKind::NsTeardown,
            TraceEvent::WarmCheckpoint { .. } => EventKind::WarmCheckpoint,
            TraceEvent::WarmRestart { .. } => EventKind::WarmRestart,
        }
    }
}

/// Construction parameters for an enabled [`Obs`].
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Spans retained by the trace ring (oldest overwritten beyond
    /// this). Default 4096.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 4096,
        }
    }
}

/// The shared observability sink: per-op latency histograms, per-kind
/// event counters, and the span trace ring. All operations are
/// thread-safe through `&self`.
pub struct Obs {
    hists: [LatencyHist; 8],
    events: [AtomicU64; EventKind::COUNT],
    ring: TraceRing,
}

impl Obs {
    /// A fresh sink.
    pub fn new(config: ObsConfig) -> Obs {
        Obs {
            hists: std::array::from_fn(|_| LatencyHist::new()),
            events: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: TraceRing::new(config.ring_capacity),
        }
    }

    /// The latency histogram for one operation class.
    pub fn hist(&self, op: OpClass) -> &LatencyHist {
        &self.hists[op.idx()]
    }

    /// The span trace ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Count of events recorded for `kind`.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        self.events[kind.idx()].load(Ordering::Relaxed)
    }

    /// All event counts, keyed and in index order.
    pub fn event_counts(&self) -> Vec<(&'static str, u64)> {
        EventKind::all()
            .into_iter()
            .map(|k| (k.key(), self.event_count(k)))
            .collect()
    }

    /// Records one event: bumps its kind counter and appends it to the
    /// trace ring.
    pub fn record_event(&self, event: TraceEvent) {
        self.events[EventKind::of(&event).idx()].fetch_add(1, Ordering::Relaxed);
        self.ring.push(current_tid(), event);
    }

    /// Zeroes histograms, event counters, and the trace ring.
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
        for c in &self.events {
            c.store(0, Ordering::Relaxed);
        }
        self.ring.reset();
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("ring", &self.ring)
            .finish_non_exhaustive()
    }
}

/// The handle instrumentation sites hold. Cloning is one `Arc` bump
/// (or a no-op when disabled).
///
/// Zero-cost when disabled: `inner` is `None`, every probe method is
/// `#[inline]` and reduces to a single branch on that cold value, and
/// [`event`](Recorder::event) takes a closure so the event payload is
/// never constructed on the disabled path. The overhead guard test in
/// this module and `dc-vfs/tests/obs_overhead.rs` hold this to
/// same-order ns/op.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Obs>>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder backed by a fresh [`Obs`].
    pub fn enabled(config: ObsConfig) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Obs::new(config))),
        }
    }

    /// Whether this recorder is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sink, when enabled.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.inner.as_ref()
    }

    /// Records a latency sample for `op` (no-op when disabled).
    #[inline]
    pub fn latency(&self, op: OpClass, ns: u64) {
        if let Some(obs) = &self.inner {
            obs.hist(op).record(ns);
        }
    }

    /// Records the event built by `f` (when disabled, `f` is never
    /// called, so payload construction costs nothing).
    #[inline]
    pub fn event(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(obs) = &self.inner {
            obs.record_event(f());
        }
    }

    /// A timestamp for span timing — `None` when disabled so callers
    /// skip the clock read entirely.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        if self.inner.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Zeroes the sink, if enabled.
    pub fn reset(&self) {
        if let Some(obs) = &self.inner {
            obs.reset();
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.now().is_none());
        r.latency(OpClass::Open, 100);
        r.event(|| unreachable!("closure must not run when disabled"));
        assert!(r.obs().is_none());
    }

    #[test]
    fn enabled_recorder_counts_and_traces() {
        let r = Recorder::enabled(ObsConfig { ring_capacity: 16 });
        r.latency(OpClass::AccessStat, 500);
        r.event(|| TraceEvent::LookupStart);
        r.event(|| TraceEvent::DlhtProbe { hit: true });
        r.event(|| TraceEvent::LookupEnd {
            outcome: LookupOutcome::Positive,
            ns: 500,
        });
        let obs = r.obs().unwrap();
        assert_eq!(obs.hist(OpClass::AccessStat).count(), 1);
        assert_eq!(obs.event_count(EventKind::LookupStart), 1);
        assert_eq!(obs.event_count(EventKind::DlhtProbeHit), 1);
        assert_eq!(obs.event_count(EventKind::LookupEndPositive), 1);
        assert_eq!(obs.ring().snapshot().len(), 3);
        r.reset();
        assert_eq!(obs.event_count(EventKind::LookupStart), 0);
        assert_eq!(obs.hist(OpClass::AccessStat).count(), 0);
        assert!(obs.ring().snapshot().is_empty());
    }

    #[test]
    fn event_kind_keys_are_unique_and_indexed() {
        let all = EventKind::all();
        for (i, k) in all.into_iter().enumerate() {
            assert_eq!(k.idx(), i);
        }
        let mut keys: Vec<_> = all.iter().map(|k| k.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), EventKind::COUNT);
    }

    #[test]
    fn disabled_probe_overhead_is_negligible() {
        // The acceptance criterion: a disabled recorder must not add
        // measurable overhead. 2M probe pairs in well under a second
        // means single-digit ns per probe; the bound is generous to
        // stay robust on loaded CI machines.
        let r = Recorder::disabled();
        let iters = 2_000_000u64;
        let start = Instant::now();
        for i in 0..iters {
            r.latency(OpClass::Io, i);
            r.event(|| TraceEvent::SlowStep {
                component: i as u32,
            });
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        assert!(
            per_iter < 150.0,
            "disabled recorder costs {per_iter:.1} ns/iter"
        );
    }
}
