//! The unified metrics registry: component counters, recorder
//! histograms, and event counts behind one snapshot/reset API.

use crate::hist::HistSummary;
use crate::recorder::{OpClass, Recorder};

/// A component that exposes counters to the registry. `DcacheStats`,
/// the block-device page cache, and syscall timing each adapt into one
/// of these so a single [`Registry::snapshot`] covers the whole stack.
pub trait MetricSource: Send + Sync {
    /// Section name in exports (snake_case).
    fn name(&self) -> &'static str;
    /// Current counter values, in a stable order.
    fn counters(&self) -> Vec<(&'static str, u64)>;
    /// Derived ratios in `[0, 1]` (optional).
    fn rates(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
    /// Latency histograms this source owns (optional), keyed by a
    /// stable snake_case name. Appears alongside the recorder's per-op
    /// histograms in both exporters — this is how components with their
    /// own per-worker histograms (e.g. the metadata server) surface
    /// latency without routing through the recorder's `OpClass` set.
    fn hists(&self) -> Vec<(String, HistSummary)> {
        Vec::new()
    }
    /// Dynamically-named counters (optional), keyed by a `label.metric`
    /// string built at runtime — per-tenant or per-class breakdowns
    /// (e.g. `hot.ops`) that cannot use the `&'static str` keys of
    /// [`counters`](MetricSource::counters). Appended after the static
    /// counters in the source's section.
    fn labeled_counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
    /// Zeroes the underlying counters.
    fn reset(&self);
}

/// One named group of counters in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct Section {
    /// Source name.
    pub name: String,
    /// Counter key/value pairs in source order.
    pub counters: Vec<(String, u64)>,
}

/// A point-in-time copy of every registered metric: counter sections,
/// derived rates, and per-op latency summaries.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Counter sections, one per source plus `events` when the
    /// recorder is enabled.
    pub sections: Vec<Section>,
    /// Derived ratios as `section.key` → value in `[0, 1]`.
    pub rates: Vec<(String, f64)>,
    /// Latency summaries keyed by [`OpClass::key`], present only for
    /// classes with samples.
    pub hists: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Serialises to JSON (schema `dcache-metrics/v1`). Hand-rolled —
    /// keys are known-ASCII identifiers, so no escaping is needed.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"dcache-metrics/v1\",\n  \"counters\": {");
        for (si, section) in self.sections.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{", section.name));
            for (ci, (key, value)) in section.counters.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      \"{key}\": {value}"));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  },\n  \"rates\": {");
        for (ri, (key, value)) in self.rates.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{key}\": {value:.6}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (hi, (key, h)) in self.hists.iter().enumerate() {
            if hi > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{key}\": {{ \"count\": {}, \"mean_ns\": {:.1}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
                 \"p999_ns\": {}, \"max_ns\": {} }}",
                h.count, h.mean_ns, h.p50_ns, h.p90_ns, h.p99_ns, h.p999_ns, h.max_ns
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders an aligned, human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        for section in &self.sections {
            out.push_str(&format!("[{}]\n", section.name));
            let width = section
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (key, value) in &section.counters {
                out.push_str(&format!("  {key:<width$}  {value}\n"));
            }
        }
        if !self.rates.is_empty() {
            out.push_str("[rates]\n");
            let width = self.rates.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (key, value) in &self.rates {
                out.push_str(&format!("  {key:<width$}  {:.2}%\n", value * 100.0));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("[latency]\n");
            out.push_str(&format!(
                "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "op", "count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"
            ));
            for (key, h) in &self.hists {
                out.push_str(&format!(
                    "  {:<12} {:>10} {:>10.0} {:>10} {:>10} {:>10} {:>10}\n",
                    key, h.count, h.mean_ns, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
                ));
            }
        }
        out
    }
}

/// Owns the [`MetricSource`]s and the [`Recorder`]; the one place to
/// snapshot or reset everything.
pub struct Registry {
    sources: Vec<Box<dyn MetricSource>>,
    recorder: Recorder,
}

impl Registry {
    /// A registry exporting the given recorder's histograms and events
    /// alongside whatever sources get registered.
    pub fn new(recorder: Recorder) -> Registry {
        Registry {
            sources: Vec::new(),
            recorder,
        }
    }

    /// Adds a counter source. Sections appear in registration order.
    pub fn register(&mut self, source: Box<dyn MetricSource>) {
        self.sources.push(source);
    }

    /// The recorder this registry exports.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Copies every source, the recorder's event counters, and its
    /// non-empty latency histograms into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut sections = Vec::with_capacity(self.sources.len() + 1);
        let mut rates = Vec::new();
        for source in &self.sources {
            let mut counters: Vec<(String, u64)> = source
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            counters.extend(source.labeled_counters());
            sections.push(Section {
                name: source.name().to_string(),
                counters,
            });
            for (key, value) in source.rates() {
                rates.push((format!("{}.{}", source.name(), key), value));
            }
        }
        let mut hists = Vec::new();
        for source in &self.sources {
            for (key, summary) in source.hists() {
                if summary.count > 0 {
                    hists.push((key, summary));
                }
            }
        }
        if let Some(obs) = self.recorder.obs() {
            sections.push(Section {
                name: "events".to_string(),
                counters: obs
                    .event_counts()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
            for op in OpClass::all() {
                let h = obs.hist(op);
                if h.count() > 0 {
                    hists.push((op.key().to_string(), h.summary()));
                }
            }
        }
        MetricsSnapshot {
            sections,
            rates,
            hists,
        }
    }

    /// Zeroes every source and the recorder.
    pub fn reset_all(&self) {
        for source in &self.sources {
            source.reset();
        }
        self.recorder.reset();
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("sources", &self.sources.len())
            .field("recorder", &self.recorder)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::ObsConfig;
    use crate::trace::TraceEvent;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Fake {
        hits: AtomicU64,
        misses: AtomicU64,
    }

    impl MetricSource for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![
                ("hits", self.hits.load(Ordering::Relaxed)),
                ("misses", self.misses.load(Ordering::Relaxed)),
            ]
        }
        fn rates(&self) -> Vec<(&'static str, f64)> {
            vec![("hit_rate", 0.75)]
        }
        fn reset(&self) {
            self.hits.store(0, Ordering::Relaxed);
            self.misses.store(0, Ordering::Relaxed);
        }
    }

    fn registry() -> Registry {
        let mut reg = Registry::new(Recorder::enabled(ObsConfig::default()));
        reg.register(Box::new(Fake {
            hits: AtomicU64::new(3),
            misses: AtomicU64::new(1),
        }));
        reg
    }

    #[test]
    fn snapshot_includes_sources_events_and_hists() {
        let reg = registry();
        let r = reg.recorder().clone();
        r.latency(OpClass::Open, 1_000);
        r.event(|| TraceEvent::LookupStart);

        let snap = reg.snapshot();
        assert_eq!(snap.sections[0].name, "fake");
        assert_eq!(snap.sections[0].counters[0], ("hits".to_string(), 3));
        let events = snap.sections.iter().find(|s| s.name == "events").unwrap();
        let (_, n) = events
            .counters
            .iter()
            .find(|(k, _)| k == "lookup_start")
            .unwrap();
        assert_eq!(*n, 1);
        assert_eq!(snap.rates[0].0, "fake.hit_rate");
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.hists[0].0, "open");
        assert_eq!(snap.hists[0].1.count, 1);
    }

    #[test]
    fn json_has_schema_and_sections() {
        let reg = registry();
        reg.recorder().latency(OpClass::AccessStat, 42);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"schema\": \"dcache-metrics/v1\""));
        assert!(json.contains("\"fake\""));
        assert!(json.contains("\"hits\": 3"));
        assert!(json.contains("\"fake.hit_rate\": 0.750000"));
        assert!(json.contains("\"stat\""));
        assert!(json.contains("\"p50_ns\""));
    }

    #[test]
    fn text_render_mentions_everything() {
        let reg = registry();
        reg.recorder().latency(OpClass::Unlink, 7);
        let text = reg.snapshot().to_text();
        assert!(text.contains("[fake]"));
        assert!(text.contains("[events]"));
        assert!(text.contains("[rates]"));
        assert!(text.contains("unlink"));
    }

    #[test]
    fn source_hists_appear_in_both_exporters() {
        struct WithHist {
            h: crate::hist::LatencyHist,
        }
        impl MetricSource for WithHist {
            fn name(&self) -> &'static str {
                "serve"
            }
            fn counters(&self) -> Vec<(&'static str, u64)> {
                vec![("requests", self.h.count())]
            }
            fn hists(&self) -> Vec<(String, HistSummary)> {
                vec![
                    ("serve_lookup".to_string(), self.h.summary()),
                    // Empty histograms are suppressed, like per-op ones.
                    (
                        "serve_empty".to_string(),
                        crate::hist::LatencyHist::new().summary(),
                    ),
                ]
            }
            fn reset(&self) {
                self.h.reset();
            }
        }
        let mut reg = Registry::new(Recorder::disabled());
        let src = WithHist {
            h: crate::hist::LatencyHist::new(),
        };
        src.h.record(640);
        reg.register(Box::new(src));
        let snap = reg.snapshot();
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.hists[0].0, "serve_lookup");
        let json = snap.to_json();
        assert!(json.contains("\"serve_lookup\""));
        assert!(!json.contains("\"serve_empty\""));
        let text = snap.to_text();
        assert!(text.contains("serve_lookup"));
    }

    #[test]
    fn reset_all_propagates() {
        let reg = registry();
        reg.recorder().latency(OpClass::Io, 9);
        reg.reset_all();
        let snap = reg.snapshot();
        assert_eq!(snap.sections[0].counters[0].1, 0);
        assert!(snap.hists.is_empty());
    }
}
