//! Span tracing: a fixed-capacity, overwrite-oldest ring of typed
//! lookup-path events.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// How a traced lookup finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The path resolved to an entry.
    Positive,
    /// The path provably does not exist (ENOENT / ENOTDIR).
    Negative,
    /// Resolution failed for another reason (e.g. EACCES).
    Error,
}

/// Broad class of an injected fault, for trace readability and
/// per-class counting without `dc-obs` depending on `dc-fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The access failed but the block heals after a bounded burst.
    Transient,
    /// The block is broken for good.
    Permanent,
    /// A read returned fewer bytes than a block (torn read).
    ShortRead,
    /// The access succeeded after an injected device stall.
    LatencySpike,
}

/// One step on the lookup path. Variants mirror the stages of the
/// paper's fast/slow path: a DLHT probe, a PCC permission check, a
/// seqlock retry, a slowpath component step, a fall-through to the
/// backing FS, and block I/O charged by the device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A syscall began resolving a path.
    LookupStart,
    /// The full-path hash table was probed.
    DlhtProbe {
        /// Whether the signature matched a live entry.
        hit: bool,
    },
    /// The prefix-check cache was consulted for this credential.
    PccCheck {
        /// Whether a valid entry authorised the prefix.
        hit: bool,
        /// Whether an entry existed but its seq had moved (stale).
        stale: bool,
    },
    /// A rename-seqlock check failed and the walk restarted.
    SeqRetry,
    /// A lock-free fastpath pinned the reclamation epoch.
    EpochPin,
    /// A per-dentry seq validation failed mid-read and the lock-free
    /// fastpath restarted.
    ReadRetry,
    /// The slowpath resolved one more component.
    SlowStep {
        /// Zero-based index of the component within this walk.
        component: u32,
    },
    /// The dcache missed and the backing FS was consulted.
    FsMiss,
    /// The (simulated) device performed I/O.
    BlockIo {
        /// Blocks transferred.
        blks: u32,
        /// Simulated nanoseconds charged.
        ns: u64,
    },
    /// The lookup finished.
    LookupEnd {
        /// How it finished.
        outcome: LookupOutcome,
        /// Wall-clock nanoseconds from the matching `LookupStart`.
        ns: u64,
    },
    /// The fault injector failed (or stalled) a device access.
    FaultInjected {
        /// What kind of fault fired.
        class: FaultClass,
    },
    /// The page cache retried a transiently failed device access.
    IoRetry {
        /// 1-based retry number for this access.
        attempt: u32,
        /// Simulated backoff charged before the retry.
        backoff_ns: u64,
    },
    /// The memory-pressure shrinker reclaimed dcache memory.
    Shrink {
        /// Byte budget the shrinker was asked to reach.
        target_bytes: u64,
        /// Bytes actually freed by this pass.
        freed_bytes: u64,
    },
    /// The metadata journal committed a transaction (payload flushed,
    /// then the checksummed commit record).
    JournalCommit {
        /// Metadata blocks logged by the transaction.
        blocks: u32,
    },
    /// Mount replayed committed journal transactions into place.
    JournalReplay {
        /// Transactions replayed (torn tail already discarded).
        txns: u32,
    },
    /// The journal advanced its tail after a full checkpoint (all
    /// in-place metadata durable; log space reclaimed).
    JournalCheckpoint,
    /// The metadata server executed one request batch under a single
    /// batch-scoped epoch pin.
    ServeBatch {
        /// Requests in the batch.
        ops: u32,
    },
    /// The metadata server shed a frame at admission (queue full or
    /// memory gate tripped).
    ServeReject {
        /// Requests in the rejected frame.
        ops: u32,
    },
    /// A client connection was accepted by the metadata server.
    ServeConn,
    /// A cold prefix-check cache was detached from its credential to
    /// keep the fleet under the resident-PCC cap.
    PccEvict,
    /// A mount namespace was torn down: its DLHT was retired and its
    /// prefix-check caches detached.
    NsTeardown {
        /// Live DLHT entries retired with the namespace's table.
        entries: u64,
        /// PCC instances detached from their credentials.
        pccs: u32,
    },
    /// The warm-restart directory index was checkpointed to its
    /// journal-adjacent disk region (journal tail durable first).
    WarmCheckpoint {
        /// Index entries persisted (after any capacity truncation).
        entries: u32,
    },
    /// A mount attempted to rehydrate the directory cache from the
    /// warm-restart index.
    WarmRestart {
        /// Dentries validated against the recovered tree and published.
        published: u32,
        /// Index entries rejected by per-entry validation (stale or
        /// orphaned against the recovered metadata).
        rejected: u32,
        /// True when the whole index was unusable (absent, corrupt,
        /// version/sequence mismatch) and the cache starts cold.
        fallback: bool,
    },
}

/// A [`TraceEvent`] stamped with a global sequence number and the
/// recording thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Global order of this event across all threads (0-based).
    pub seq: u64,
    /// Small dense id of the recording thread (see [`current_tid`]).
    pub tid: u32,
    /// The event itself.
    pub event: TraceEvent,
}

/// Fixed-capacity ring of [`Span`]s that overwrites the oldest entry
/// when full.
///
/// Writers claim a global sequence number with one atomic add, then
/// store into slot `seq % capacity` under that slot's own mutex —
/// writers only contend when they collide on the same slot, which at
/// realistic capacities means never. [`snapshot`](TraceRing::snapshot)
/// returns surviving spans oldest-first.
pub struct TraceRing {
    slots: Box<[Mutex<Option<Span>>]>,
    cursor: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Maximum spans retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed since creation or [`reset`](TraceRing::reset)
    /// (not capped at capacity).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends an event, evicting the oldest retained span when full.
    pub fn push(&self, tid: u32, event: TraceEvent) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        // A racing writer that claimed a later seq for the same slot may
        // have stored first; never let an older span clobber a newer one.
        if guard.is_none_or(|prev| prev.seq < seq) {
            *guard = Some(Span { seq, tid, event });
        }
    }

    /// Copies out the surviving spans, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out: Vec<Span> = self
            .slots
            .iter()
            .filter_map(|slot| *slot.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        out.sort_by_key(|s| s.seq);
        out
    }

    /// Discards all retained spans and restarts sequence numbering.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        self.cursor.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .finish()
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, assigned on first use.
/// Cheaper and more readable in traces than `std::thread::ThreadId`.
pub fn current_tid() -> u32 {
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwrites_oldest_in_order() {
        let ring = TraceRing::new(8);
        for i in 0..20u32 {
            ring.push(0, TraceEvent::SlowStep { component: i });
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 8);
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        for s in &spans {
            assert_eq!(
                s.event,
                TraceEvent::SlowStep {
                    component: s.seq as u32
                }
            );
        }
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let ring = TraceRing::new(16);
        ring.push(1, TraceEvent::LookupStart);
        ring.push(1, TraceEvent::DlhtProbe { hit: true });
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].event, TraceEvent::LookupStart);
        assert_eq!(spans[1].event, TraceEvent::DlhtProbe { hit: true });
    }

    #[test]
    fn reset_clears() {
        let ring = TraceRing::new(4);
        ring.push(0, TraceEvent::SeqRetry);
        ring.reset();
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.pushed(), 0);
    }

    #[test]
    fn concurrent_writers_keep_invariants() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    let tid = current_tid();
                    for i in 0..5_000u32 {
                        ring.push(tid, TraceEvent::SlowStep { component: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 20_000);
        let spans = ring.snapshot();
        // Full ring: every slot holds a distinct, sorted, recent seq.
        assert_eq!(spans.len(), 64);
        for pair in spans.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        for s in &spans {
            assert!(s.seq >= 20_000 - 64 * 2, "implausibly old span survived");
        }
    }
}
