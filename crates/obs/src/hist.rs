//! Log-linear latency histograms (HDR style).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two group: 2^5 = 32, giving ≤ 1/32
/// (~3.1%) relative bucket width everywhere above the linear range.
const SUB_BITS: u32 = 5;
/// Sub-buckets per group.
const SUBS: usize = 1 << SUB_BITS;
/// Power-of-two groups. Group 0 covers `[0, 32)` linearly; group `g ≥ 1`
/// covers `[2^(g+4), 2^(g+5))`. The top group's buckets reach `u64::MAX`.
const GROUPS: usize = 64 - SUB_BITS as usize + 1;
/// Total bucket count (60 × 32 = 1920 cells ≈ 15 KiB per histogram).
const BUCKETS: usize = GROUPS * SUBS;

/// Bucket index for a value. Group 0 is the identity on `[0, 32)`; above
/// that, the group is chosen by the most significant bit and the
/// sub-bucket by the next `SUB_BITS` bits.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
    group * SUBS + sub
}

/// Lowest value mapping to bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    let group = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    if group == 0 {
        return sub;
    }
    (1u64 << (group as u32 + SUB_BITS - 1)) + (sub << (group - 1))
}

/// Highest value mapping to bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(idx + 1) - 1
}

/// A lock-free log-linear histogram of nanosecond latencies.
///
/// `record` is one atomic add on a cell chosen by bit arithmetic —
/// safe to call concurrently from any number of threads. Histograms
/// merge cell-wise, so per-thread instances can be combined into one.
/// Percentiles come back as the upper bound of the selected bucket
/// (clamped to the exact observed maximum), giving a relative error of
/// at most one sub-bucket width (1/32) above the linear range and
/// exact values below it.
pub struct LatencyHist {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds).
    #[inline]
    pub fn record(&self, ns: u64) {
        self.counts[index_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest bucket whose
    /// cumulative count reaches `ceil(q × count)` samples, reported as
    /// that bucket's upper bound (clamped to the observed maximum).
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, cell) in self.counts.iter().enumerate() {
            cum += cell.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_high(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every cell of `other` into `self` (cross-thread merge).
    ///
    /// Because the buckets are fixed and identical across instances,
    /// merging per-thread histograms is lossless: quantiles of the
    /// merged histogram equal those of a single histogram that had
    /// recorded every sample directly. `other` is unchanged, so workers
    /// can keep recording into their own instance while a snapshot
    /// aggregates — no locking on the record path.
    pub fn merge_from(&self, other: &LatencyHist) {
        self.merge(other);
    }

    /// Adds every cell of `other` into `self` (cross-thread merge).
    pub fn merge(&self, other: &LatencyHist) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for cell in self.counts.iter() {
            cell.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the headline statistics.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            mean_ns: self.mean(),
            p50_ns: self.percentile(0.50),
            p90_ns: self.percentile(0.90),
            p99_ns: self.percentile(0.99),
            p999_ns: self.percentile(0.999),
            max_ns: self.max(),
        }
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHist")
            .field("count", &self.count())
            .field("mean_ns", &self.mean())
            .field("max_ns", &self.max())
            .finish()
    }
}

/// Headline statistics extracted from a [`LatencyHist`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        // Every bucket's low is the previous bucket's high + 1, with no
        // gaps or overlaps, and values map into their own bucket.
        for idx in 1..BUCKETS {
            assert_eq!(bucket_low(idx), bucket_high(idx - 1) + 1, "idx {idx}");
        }
        for idx in 0..BUCKETS {
            assert_eq!(index_of(bucket_low(idx)), idx, "low of {idx}");
            if idx + 1 < BUCKETS {
                assert_eq!(index_of(bucket_high(idx)), idx, "high of {idx}");
            }
        }
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHist::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.percentile(1.0 / 64.0), 0);
        assert_eq!(h.percentile(1.0), 31);
        assert_eq!(h.max(), 31);
        assert!((h.mean() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes() {
        let h = LatencyHist::new();
        h.record(12345);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary().max_ns, 0);
    }

    #[test]
    fn percentile_bounded_by_bucket_width() {
        let h = LatencyHist::new();
        let v = 1_000_000u64;
        for _ in 0..100 {
            h.record(v);
        }
        let p = h.percentile(0.5);
        assert!(p >= v, "upper-bound convention: {p} < {v}");
        assert!(p as f64 <= v as f64 * (1.0 + 1.0 / 32.0) + 1.0);
    }

    #[test]
    fn merged_quantiles_match_single_combined_histogram() {
        // Three per-worker histograms vs one histogram fed every sample:
        // identical buckets make the merge lossless, so every headline
        // statistic must match exactly.
        let combined = LatencyHist::new();
        let workers: Vec<LatencyHist> = (0..3).map(|_| LatencyHist::new()).collect();
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..30_000u64 {
            // splitmix64 keeps the sample spread across many groups.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let sample = (z ^ (z >> 31)) % 50_000_000;
            combined.record(sample);
            workers[(i % 3) as usize].record(sample);
        }
        let merged = LatencyHist::new();
        for w in &workers {
            merged.merge_from(w);
        }
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.max(), combined.max());
        assert!((merged.mean() - combined.mean()).abs() < 1e-6);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                merged.percentile(q),
                combined.percentile(q),
                "quantile {q} diverges after merge"
            );
        }
        assert_eq!(merged.summary(), combined.summary());
        // The merge source is untouched and still usable.
        assert_eq!(workers[0].count(), 10_000);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHist::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
