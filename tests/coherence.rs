//! Coherence of the fastpath caches (§3.2): permission and structure
//! changes must be visible through the DLHT/PCC immediately, with no
//! window in which a stale memoized check grants access.

use dcache_repro::cred::Cred;
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn optimized() -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(99))
        .build()
        .unwrap();
    let p = k.init_process();
    (k, p)
}

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

#[test]
fn rename_invalidates_dlht_entries_for_whole_subtree() {
    let (k, p) = optimized();
    k.mkdir(&p, "/a", 0o755).unwrap();
    k.mkdir(&p, "/a/b", 0o755).unwrap();
    k.mkdir(&p, "/a/b/c", 0o755).unwrap();
    touch(&k, &p, "/a/b/c/leaf");
    // Warm every level so the whole subtree is in the DLHT.
    for path in ["/a", "/a/b", "/a/b/c", "/a/b/c/leaf"] {
        for _ in 0..2 {
            k.stat(&p, path).unwrap();
        }
    }
    let visits_before = k.shootdown_visits();
    k.rename(&p, "/a/b", "/a/z").unwrap();
    // The shootdown walked b, c, leaf (at least).
    assert!(k.shootdown_visits() - visits_before >= 3);
    // Every old path now misses; every new path resolves.
    assert_eq!(k.stat(&p, "/a/b/c/leaf"), Err(FsError::NoEnt));
    assert_eq!(k.stat(&p, "/a/b"), Err(FsError::NoEnt));
    assert!(k.stat(&p, "/a/z/c/leaf").is_ok());
    // And repeats of the new path take the fastpath again.
    let before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    for _ in 0..4 {
        k.stat(&p, "/a/z/c/leaf").unwrap();
    }
    assert!(k.dcache.stats.fast_hits.load(Ordering::Relaxed) >= before + 4);
}

#[test]
fn chmod_blocks_fastpath_reuse_for_other_creds() {
    let (k, root) = optimized();
    k.mkdir(&root, "/p", 0o755).unwrap();
    k.mkdir(&root, "/p/q", 0o755).unwrap();
    touch(&k, &root, "/p/q/f");
    let alice = k.spawn_with_cred(&root, Cred::user(1000, 1000));
    // Warm alice's PCC thoroughly.
    for _ in 0..5 {
        assert!(k.stat(&alice, "/p/q/f").is_ok());
    }
    // Flip permissions back and forth; every state must be enforced.
    for round in 0..4 {
        let mode = if round % 2 == 0 { 0o700 } else { 0o755 };
        k.chmod(&root, "/p", mode).unwrap();
        let r = k.stat(&alice, "/p/q/f");
        if mode == 0o700 {
            assert_eq!(r, Err(FsError::Access), "round {round}");
        } else {
            assert!(r.is_ok(), "round {round}");
        }
    }
}

#[test]
fn pcc_is_not_shared_across_credentials() {
    let (k, root) = optimized();
    k.mkdir(&root, "/home", 0o755).unwrap();
    k.mkdir(&root, "/home/alice", 0o700).unwrap();
    k.chown(&root, "/home/alice", Some(1000), Some(1000))
        .unwrap();
    touch(&k, &root, "/home/alice/diary");
    k.chown(&root, "/home/alice/diary", Some(1000), Some(1000))
        .unwrap();
    let alice = k.spawn_with_cred(&root, Cred::user(1000, 1000));
    let bob = k.spawn_with_cred(&root, Cred::user(1001, 1001));
    // Alice warms HER memoized checks (and the shared DLHT).
    for _ in 0..5 {
        assert!(k.stat(&alice, "/home/alice/diary").is_ok());
    }
    // Bob hits the same DLHT entry but must fail his own prefix check.
    for _ in 0..5 {
        assert_eq!(k.stat(&bob, "/home/alice/diary"), Err(FsError::Access));
    }
    // And alice still succeeds afterwards.
    assert!(k.stat(&alice, "/home/alice/diary").is_ok());
}

#[test]
fn forked_processes_share_pcc_until_setuid() {
    let (k, root) = optimized();
    k.mkdir(&root, "/srv", 0o755).unwrap();
    touch(&k, &root, "/srv/app");
    let worker1 = k.spawn(&root);
    let worker2 = k.spawn(&root);
    // Identical creds → the very same cred object → shared PCC (§4.1).
    assert_eq!(worker1.cred().id(), worker2.cred().id());
    k.stat(&worker1, "/srv/app").unwrap();
    let before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    k.stat(&worker2, "/srv/app").unwrap();
    assert!(
        k.dcache.stats.fast_hits.load(Ordering::Relaxed) > before,
        "sibling with the shared cred should ride the warmed PCC"
    );
    // setuid forks the cred; the new credential re-validates on its own.
    k.setuid(&worker2, 1000, 1000);
    assert_ne!(worker1.cred().id(), worker2.cred().id());
    assert!(k.stat(&worker2, "/srv/app").is_ok());
}

#[test]
fn symlink_replacement_invalidates_cached_translation() {
    let (k, p) = optimized();
    k.mkdir(&p, "/t1", 0o755).unwrap();
    k.mkdir(&p, "/t2", 0o755).unwrap();
    touch(&k, &p, "/t1/inner");
    let fd = k.open(&p, "/t2/inner", OpenFlags::create(), 0o644).unwrap();
    k.write_fd(&p, fd, b"version-2").unwrap();
    k.close(&p, fd).unwrap();
    k.symlink(&p, "/t1", "/cur").unwrap();
    // Warm the alias and target-signature machinery.
    for _ in 0..4 {
        assert_eq!(k.stat(&p, "/cur/inner").unwrap().size, 0);
    }
    // Atomically retarget: the idiomatic symlink flip.
    k.symlink(&p, "/t2", "/cur.new").unwrap();
    k.rename(&p, "/cur.new", "/cur").unwrap();
    for _ in 0..4 {
        assert_eq!(
            k.stat(&p, "/cur/inner").unwrap().size,
            9,
            "stale symlink translation served"
        );
    }
    // Unlink the link entirely: paths through it die.
    k.unlink(&p, "/cur").unwrap();
    assert_eq!(k.stat(&p, "/cur/inner"), Err(FsError::NoEnt));
}

#[test]
fn eviction_under_capacity_pressure_preserves_correctness() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(100).with_capacity(128))
        .build()
        .unwrap();
    let p = k.init_process();
    // Far more files than the dentry budget.
    k.mkdir(&p, "/big", 0o755).unwrap();
    for i in 0..600 {
        touch(&k, &p, &format!("/big/f{i:03}"));
    }
    assert!(
        k.dcache.live() <= 300,
        "cache failed to shrink (live={})",
        k.dcache.live()
    );
    assert!(k.dcache.stats.evictions.load(Ordering::Relaxed) > 0);
    // Every file is still reachable (refill through the slowpath).
    for i in (0..600).step_by(37) {
        assert!(k.stat(&p, &format!("/big/f{i:03}")).is_ok());
    }
    // Misses behave too.
    assert_eq!(k.stat(&p, "/big/f999"), Err(FsError::NoEnt));
}

#[test]
fn version_counter_invalidation_of_wraparound_flush() {
    let (k, p) = optimized();
    k.mkdir(&p, "/w", 0o755).unwrap();
    touch(&k, &p, "/w/f");
    for _ in 0..3 {
        k.stat(&p, "/w/f").unwrap();
    }
    // The paper's 2^32-wraparound contingency: flush every PCC. The
    // next lookup re-executes the prefix check (via the cheap ancestor
    // revalidation) and keeps working.
    k.dcache.flush_all_pccs();
    let reval_before = k.dcache.stats.fast_revalidations.load(Ordering::Relaxed);
    assert!(k.stat(&p, "/w/f").is_ok());
    assert!(
        k.dcache.stats.fast_revalidations.load(Ordering::Relaxed) > reval_before,
        "flushed PCC entry should be recovered by chain revalidation"
    );
    // Re-warmed.
    let hits_before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    k.stat(&p, "/w/f").unwrap();
    assert!(k.dcache.stats.fast_hits.load(Ordering::Relaxed) > hits_before);
}

#[test]
fn hardlink_via_second_path_keeps_coherent_attrs() {
    let (k, p) = optimized();
    k.mkdir(&p, "/x", 0o755).unwrap();
    k.mkdir(&p, "/y", 0o755).unwrap();
    touch(&k, &p, "/x/file");
    k.link(&p, "/x/file", "/y/alias").unwrap();
    for _ in 0..3 {
        k.stat(&p, "/x/file").unwrap();
        k.stat(&p, "/y/alias").unwrap();
    }
    // chmod through one name is visible through the other immediately,
    // including on the fastpath.
    k.chmod(&p, "/y/alias", 0o600).unwrap();
    assert_eq!(k.stat(&p, "/x/file").unwrap().mode, 0o600);
    // Unlink one name: the other keeps working with nlink 1.
    k.unlink(&p, "/x/file").unwrap();
    assert_eq!(k.stat(&p, "/y/alias").unwrap().nlink, 1);
    assert_eq!(k.stat(&p, "/x/file"), Err(FsError::NoEnt));
}
