//! Adversarial checks on the fastpath's security argument (§3.3):
//! signature-based lookup must never let one credential leverage another
//! credential's cache state, and cache-internal churn caused by an
//! adversary must never change what a victim's lookup returns.

use dcache_repro::cred::Cred;
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

fn world() -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(0x5ec))
        .build()
        .unwrap();
    let p = k.init_process();
    (k, p)
}

#[test]
fn dlht_entries_do_not_leak_access_across_credentials() {
    let (k, root) = world();
    // Bob's private tree, fully warmed by Bob.
    k.mkdir(&root, "/home", 0o755).unwrap();
    k.mkdir(&root, "/home/bob", 0o700).unwrap();
    k.chown(&root, "/home/bob", Some(1001), Some(1001)).unwrap();
    let bob = k.spawn_with_cred(&root, Cred::user(1001, 1001));
    let fd = k
        .open(&bob, "/home/bob/secret.txt", OpenFlags::create(), 0o600)
        .unwrap();
    k.write_fd(&bob, fd, b"classified").unwrap();
    k.close(&bob, fd).unwrap();
    for _ in 0..10 {
        k.stat(&bob, "/home/bob/secret.txt").unwrap(); // warm DLHT+Bob's PCC
    }
    // Alice shares the DLHT (system-wide) but not the PCC. Every probe
    // must fail the prefix check, hot cache or not.
    let alice = k.spawn_with_cred(&root, Cred::user(1000, 1000));
    for _ in 0..10 {
        assert_eq!(k.stat(&alice, "/home/bob/secret.txt"), Err(FsError::Access));
        assert_eq!(
            k.open(&alice, "/home/bob/secret.txt", OpenFlags::read_only(), 0)
                .unwrap_err(),
            FsError::Access
        );
    }
    // Bob is unaffected by Alice's failed probes.
    assert!(k.stat(&bob, "/home/bob/secret.txt").is_ok());
}

#[test]
fn adversarial_cache_churn_cannot_redirect_a_victims_lookup() {
    let (k, root) = world();
    k.mkdir(&root, "/shared", 0o777).unwrap();
    let fd = k
        .open(&root, "/shared/victim.dat", OpenFlags::create(), 0o644)
        .unwrap();
    k.write_fd(&root, fd, b"victim-content").unwrap();
    k.close(&root, fd).unwrap();
    let victim = k.spawn_with_cred(&root, Cred::user(1000, 1000));
    let attacker = k.spawn_with_cred(&root, Cred::user(2000, 2000));
    // The attacker churns the shared DLHT with thousands of lookups of
    // its own names (including misses that create negative dentries and
    // deep-negative probes under the victim's path prefix).
    for i in 0..2000 {
        let _ = k.stat(&attacker, &format!("/shared/spam-{i}"));
        let _ = k.stat(&attacker, &format!("/shared/victim.dat/{i}"));
    }
    // The victim's lookup still reaches exactly its file.
    for _ in 0..5 {
        let a = k.stat(&victim, "/shared/victim.dat").unwrap();
        assert_eq!(a.size, 14);
        let fd = k
            .open(&victim, "/shared/victim.dat", OpenFlags::read_only(), 0)
            .unwrap();
        assert_eq!(&k.read_fd(&victim, fd, 64).unwrap()[..], b"victim-content");
        k.close(&victim, fd).unwrap();
    }
}

#[test]
fn signatures_differ_across_kernel_instances() {
    // Boot-time keying (§3.3): two kernels assign different signatures
    // to the same path. (With fixed test seeds the property is the seeds
    // differing; entropy-keyed kernels differ with overwhelming
    // probability.)
    let k1 = KernelBuilder::new(DcacheConfig::optimized())
        .build()
        .unwrap();
    let k2 = KernelBuilder::new(DcacheConfig::optimized())
        .build()
        .unwrap();
    let comps = [b"etc".as_slice(), b"passwd".as_slice()];
    assert_ne!(
        k1.dcache.key.hash_components(comps),
        k2.dcache.key.hash_components(comps)
    );
}

#[test]
fn namespace_private_dlht_and_pcc() {
    let (k, root) = world();
    k.mkdir(&root, "/data", 0o755).unwrap();
    let fd = k
        .open(&root, "/data/f", OpenFlags::create(), 0o644)
        .unwrap();
    k.close(&root, fd).unwrap();
    // Warm the init namespace.
    for _ in 0..3 {
        k.stat(&root, "/data/f").unwrap();
    }
    // A namespaced process shares the dentry tree but uses its own DLHT
    // (same signature must not resolve via the init table).
    let container = k.spawn(&root);
    k.unshare_ns(&container).unwrap();
    let miss_before = k
        .dcache
        .stats
        .fast_miss_dlht
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(k.stat(&container, "/data/f").is_ok());
    assert!(
        k.dcache
            .stats
            .fast_miss_dlht
            .load(std::sync::atomic::Ordering::Relaxed)
            > miss_before,
        "first namespaced lookup must miss its private DLHT"
    );
    // And after warming, the namespace rides its own fastpath.
    let hits_before = k
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..3 {
        k.stat(&container, "/data/f").unwrap();
    }
    assert!(
        k.dcache
            .stats
            .fast_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            >= hits_before + 3
    );
}
