//! Memory-pressure shrinker coherence.
//!
//! The shrinker (DESIGN.md §10) may only cost performance. These tests
//! interleave shrinks — including shrink-to-zero, the harshest budget —
//! with the visible syscall surface and with concurrent lock-free
//! readers, and assert that no answer is ever stale.

use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

fn kernel(config: DcacheConfig) -> Arc<Kernel> {
    KernelBuilder::new(config.with_seed(0x5EED))
        .build()
        .unwrap()
}

/// One labelled step of the interleaved script: an op plus its
/// comparable outcome string.
type Step = (&'static str, Box<dyn Fn(&Kernel, &Arc<Process>) -> String>);

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

/// One comparable outcome string, mirroring the equivalence suite.
fn stat_sig(k: &Kernel, p: &Arc<Process>, path: &str) -> String {
    match k.stat(p, path) {
        Ok(a) => format!("ok:{:?}:{:o}:{}:{}", a.ftype, a.mode, a.size, a.nlink),
        Err(e) => e.errno_name().into(),
    }
}

#[test]
fn shrink_interleaved_ops_stay_equivalent() {
    // Deterministic mirror of the gated proptest: every op runs against a
    // baseline kernel and an optimized kernel that is shrunk to zero
    // after each step; outcomes must match throughout.
    let kb = kernel(DcacheConfig::baseline());
    let ko = kernel(DcacheConfig::optimized());
    let pb = kb.init_process();
    let po = ko.init_process();

    let script: Vec<Step> = vec![
        ("mkdir /a", Box::new(|k, p| fmt(k.mkdir(p, "/a", 0o755)))),
        (
            "mkdir /a/b",
            Box::new(|k, p| fmt(k.mkdir(p, "/a/b", 0o755))),
        ),
        (
            "create /a/b/f",
            Box::new(|k, p| {
                touch(k, p, "/a/b/f");
                "ok".into()
            }),
        ),
        ("stat /a/b/f", Box::new(|k, p| stat_sig(k, p, "/a/b/f"))),
        (
            "stat /a/b/missing",
            Box::new(|k, p| stat_sig(k, p, "/a/b/missing")),
        ),
        (
            "rename /a /c",
            Box::new(|k, p| fmt(k.rename(p, "/a", "/c"))),
        ),
        ("stat /a/b/f", Box::new(|k, p| stat_sig(k, p, "/a/b/f"))),
        ("stat /c/b/f", Box::new(|k, p| stat_sig(k, p, "/c/b/f"))),
        ("unlink /c/b/f", Box::new(|k, p| fmt(k.unlink(p, "/c/b/f")))),
        ("stat /c/b/f", Box::new(|k, p| stat_sig(k, p, "/c/b/f"))),
        (
            "create /c/b/f again",
            Box::new(|k, p| {
                touch(k, p, "/c/b/f");
                "ok".into()
            }),
        ),
        ("stat /c/b/f", Box::new(|k, p| stat_sig(k, p, "/c/b/f"))),
        ("chmod /c 0", Box::new(|k, p| fmt(k.chmod(p, "/c", 0o000)))),
        ("stat /c/b/f", Box::new(|k, p| stat_sig(k, p, "/c/b/f"))),
        (
            "chmod /c back",
            Box::new(|k, p| fmt(k.chmod(p, "/c", 0o755))),
        ),
        ("stat /c/b/f", Box::new(|k, p| stat_sig(k, p, "/c/b/f"))),
    ];
    for (label, step) in &script {
        let a = step(&kb, &pb);
        let b = step(&ko, &po);
        assert_eq!(a, b, "divergence at step {label:?}");
        let freed = ko.memory_pressure(0);
        let _ = freed; // shrink-to-zero between every step
    }
    assert!(
        ko.dcache
            .stats
            .shrinks
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the shrinker actually ran"
    );
}

fn fmt(r: Result<(), dcache_repro::fs::FsError>) -> String {
    match r {
        Ok(()) => "ok".into(),
        Err(e) => e.errno_name().into(),
    }
}

#[test]
fn negative_dentry_semantics_survive_shrink() {
    let k = kernel(DcacheConfig::optimized());
    let p = k.init_process();
    k.mkdir(&p, "/dir", 0o755).unwrap();

    // Cache the absence; the second stat is answered negatively from the
    // cache (negative dentry hit or completeness short-circuit).
    assert_eq!(stat_sig(&k, &p, "/dir/ghost"), "ENOENT");
    assert_eq!(stat_sig(&k, &p, "/dir/ghost"), "ENOENT");
    let neg_hits = |k: &Kernel| {
        let s = &k.dcache.stats;
        let o = std::sync::atomic::Ordering::Relaxed;
        s.hit_negative.load(o) + s.fast_neg_hits.load(o) + s.complete_neg_avoided.load(o)
    };
    assert!(neg_hits(&k) > 0, "the absence was served from the cache");

    // Evict everything. The negative dentry is reclaimable like any
    // other; what must survive is the *semantics*, not the object.
    let freed = k.memory_pressure(0);
    assert!(freed > 0);

    // Still absent (re-misses to the FS, re-populates the cache) …
    assert_eq!(stat_sig(&k, &p, "/dir/ghost"), "ENOENT");
    // … and a subsequent create is immediately visible — no stale
    // negative answer survived the shrink.
    touch(&k, &p, "/dir/ghost");
    assert!(stat_sig(&k, &p, "/dir/ghost").starts_with("ok:"));

    // The inverse direction: a negative cached *after* the shrink still
    // behaves (negative caching machinery intact).
    assert_eq!(stat_sig(&k, &p, "/dir/ghost2"), "ENOENT");
    assert_eq!(stat_sig(&k, &p, "/dir/ghost2"), "ENOENT");
}

#[test]
fn byte_budget_bounds_cache_and_stays_correct() {
    let budget = 64 * 1024;
    let k = kernel(DcacheConfig::optimized().with_mem_budget(budget));
    let p = k.init_process();
    for d in 0..8 {
        k.mkdir(&p, &format!("/d{d}"), 0o755).unwrap();
        for f in 0..256 {
            touch(&k, &p, &format!("/d{d}/f{f}"));
        }
    }
    // Auto-shrink kept the dentry footprint within the budget.
    let per = std::mem::size_of::<dcache_repro::Dentry>();
    assert!(
        k.dcache.live() as usize * per <= budget,
        "live dentry bytes exceed the budget (live={})",
        k.dcache.live()
    );
    assert!(
        k.dcache
            .stats
            .shrinks
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    // Every file is still visible and correct after all that eviction.
    for d in 0..8 {
        for f in 0..256 {
            assert!(
                stat_sig(&k, &p, &format!("/d{d}/f{f}")).starts_with("ok:"),
                "/d{d}/f{f} lost after budget eviction"
            );
        }
        let entries = k.list_dir(&p, &format!("/d{d}")).unwrap();
        assert_eq!(entries.len(), 256, "/d{d} listing wrong after eviction");
    }
    assert_eq!(stat_sig(&k, &p, "/d0/nope"), "ENOENT");
}

#[test]
fn shrinker_registry_drives_the_dcache() {
    let k = kernel(DcacheConfig::optimized());
    let p = k.init_process();
    for f in 0..512 {
        touch(&k, &p, &format!("/f{f}"));
    }
    assert!(!k.shrinkers().is_empty(), "dcache registered at assembly");
    let before = k.shrinkers().count_bytes();
    assert!(before > 0);
    let freed = k.memory_pressure(before / 2);
    assert!(freed > 0);
    assert!(k.shrinkers().count_bytes() <= before / 2);
    // Everything still resolves (slow path re-populates).
    for f in 0..512 {
        assert!(stat_sig(&k, &p, &format!("/f{f}")).starts_with("ok:"));
    }
}

#[test]
fn concurrent_readers_race_shrinks_without_stale_reads() {
    // Lock-free readers validate per-dentry seqs against epoch-protected
    // snapshots; a racing shrink unhashes through the same coherence
    // path, so a reader must either see the pre-eviction truth or
    // re-walk — never a freed or stale dentry. 8 reader threads hammer
    // stable paths while the main thread applies pressure.
    let k = kernel(DcacheConfig::optimized());
    let p = k.init_process();
    k.mkdir(&p, "/hot", 0o755).unwrap();
    for f in 0..32 {
        touch(&k, &p, &format!("/hot/f{f}"));
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|t| {
            let k = k.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let p = k.spawn(&k.init_process());
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let f = (n + t) % 32;
                    let a = k.stat(&p, &format!("/hot/f{f}")).expect("file vanished");
                    assert_eq!(a.ftype, dcache_repro::fs::FileType::Regular);
                    assert!(
                        k.stat(&p, &format!("/hot/missing{f}")).is_err(),
                        "phantom file appeared"
                    );
                    n += 1;
                }
                n
            })
        })
        .collect();
    // 50 shrink-to-zero cycles: each one races all 8 readers' lookups
    // and repopulations (more cycles adds runtime, not coverage).
    for _ in 0..50 {
        k.memory_pressure(0);
        std::thread::yield_now();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers made progress under pressure");
}
