//! Server-side analogue of `tests/lockfree_stress.rs`: eight clients
//! issue batched lookups (by path and by signature) through the
//! metadata server while kernel-side writers rename a directory back
//! and forth and flip permission bits. Every response must be a
//! coherent snapshot:
//!
//! - stable paths always resolve, with the inode the tree actually
//!   holds;
//! - signature-keyed lookups on stable paths either hit with the right
//!   inode or return a typed `SigMiss` (cache churn) — never a stale
//!   positive, never a negative;
//! - observed modes are always values some writer actually published;
//! - in a quiescent window (no rename completed around the call),
//!   exactly one of the flip/gone names resolves;
//! - afterwards the batch/pin/retry accounting reconciles with the
//!   trace events, batch pins included.

use dc_server::proto::{ReqBody, Request, RespBody, Status};
use dc_server::{Client, Server, ServerConfig};
use dc_vfs::{EventKind, ObsConfig};
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const MODES: [u16; 2] = [0o644, 0o600];

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[test]
fn served_batches_race_structural_writers() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(77))
        .observability(ObsConfig {
            ring_capacity: 1024,
        })
        .build()
        .unwrap();
    let p = k.init_process();

    k.mkdir(&p, "/s", 0o755).unwrap();
    k.mkdir(&p, "/s/stable", 0o755).unwrap();
    k.mkdir(&p, "/s/flip", 0o755).unwrap();
    k.mkdir(&p, "/s/perm", 0o755).unwrap();
    for i in 0..8 {
        touch(&k, &p, &format!("/s/stable/f{i}"));
        touch(&k, &p, &format!("/s/flip/f{i}"));
        touch(&k, &p, &format!("/s/perm/f{i}"));
    }

    let server = Server::start(k.clone(), ServerConfig::default());
    server.register_cred(1, p.clone());

    // Warm signatures and expected inodes for the stable files.
    let warm = Client::new(server.connect());
    let stable_paths: Vec<String> = (0..8).map(|i| format!("/s/stable/f{i}")).collect();
    let reqs: Vec<Request<'_>> = stable_paths
        .iter()
        .enumerate()
        .map(|(i, path)| Request {
            id: i as u64,
            cred: 1,
            body: ReqBody::Lookup {
                path,
                want_sig: true,
            },
        })
        .collect();
    let mut stable_sig = Vec::new();
    let mut stable_ino = Vec::new();
    for r in warm.call(&reqs) {
        let RespBody::Lookup {
            ino,
            sig: Some(sig),
            ..
        } = r.body
        else {
            panic!("warmup failed: {r:?}");
        };
        stable_sig.push(sig);
        stable_ino.push(ino);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let stale = Arc::new(AtomicU64::new(0));
    let flips = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writer 1: renames /s/flip <-> /s/gone via the syscall surface.
        {
            let k = k.clone();
            let p = k.spawn(&p);
            let stop = stop.clone();
            let flips = flips.clone();
            s.spawn(move || {
                let mut to_gone = true;
                while !stop.load(Ordering::Relaxed) {
                    let (from, to) = if to_gone {
                        ("/s/flip", "/s/gone")
                    } else {
                        ("/s/gone", "/s/flip")
                    };
                    k.rename(&p, from, to).unwrap();
                    flips.fetch_add(1, Ordering::SeqCst);
                    to_gone = !to_gone;
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                if !to_gone {
                    k.rename(&p, "/s/gone", "/s/flip").unwrap();
                    flips.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        // Writer 2: flips modes on the /s/perm files.
        {
            let k = k.clone();
            let p = k.spawn(&p);
            let stop = stop.clone();
            s.spawn(move || {
                let mut r = 0xfeed_beefu64;
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let i = next(&mut r) % 8;
                    k.chmod(&p, &format!("/s/perm/f{i}"), MODES[round % 2])
                        .unwrap();
                    round += 1;
                }
                for i in 0..8 {
                    k.chmod(&p, &format!("/s/perm/f{i}"), MODES[0]).unwrap();
                }
            });
        }
        // 8 server clients, each on its own connection, issuing batches.
        for t in 0..8u64 {
            let client = Client::new(server.connect());
            let stop = stop.clone();
            let stale = stale.clone();
            let flips = flips.clone();
            let stable_paths = &stable_paths;
            let stable_sig = &stable_sig;
            let stable_ino = &stable_ino;
            s.spawn(move || {
                let mut r = 0x9e37_79b9 ^ (t + 1);
                while !stop.load(Ordering::Relaxed) {
                    // A mixed batch over the stable/perm subtrees.
                    let i = (next(&mut r) % 8) as usize;
                    let j = (next(&mut r) % 8) as usize;
                    let perm = format!("/s/perm/f{}", next(&mut r) % 8);
                    let batch = [
                        Request {
                            id: 0,
                            cred: 1,
                            body: ReqBody::Lookup {
                                path: &stable_paths[i],
                                want_sig: false,
                            },
                        },
                        Request {
                            id: 1,
                            cred: 1,
                            body: ReqBody::LookupSig { sig: stable_sig[j] },
                        },
                        Request {
                            id: 2,
                            cred: 1,
                            body: ReqBody::Stat { path: &perm },
                        },
                        Request {
                            id: 3,
                            cred: 1,
                            body: ReqBody::Readdir { path: "/s/stable" },
                        },
                        Request {
                            id: 4,
                            cred: 1,
                            body: ReqBody::Lookup {
                                path: "/s/never/f0",
                                want_sig: false,
                            },
                        },
                    ];
                    let resps = client.call(&batch);

                    // Stable path: must resolve to the known inode.
                    match (&resps[0].status, &resps[0].body) {
                        (Status::Ok, RespBody::Lookup { ino, .. }) if *ino == stable_ino[i] => {}
                        _ => {
                            stale.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Stable signature: hit with the right inode, or a
                    // typed miss under churn — never negative or stale.
                    match (&resps[1].status, &resps[1].body) {
                        (Status::Ok, RespBody::Lookup { ino, .. }) if *ino == stable_ino[j] => {}
                        (Status::SigMiss, _) => {}
                        _ => {
                            stale.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Modes are always published values.
                    match (&resps[2].status, &resps[2].body) {
                        (Status::Ok, RespBody::Stat { attr }) if MODES.contains(&attr.mode) => {}
                        _ => {
                            stale.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Readdir of the stable dir is complete.
                    match (&resps[3].status, &resps[3].body) {
                        (Status::Ok, RespBody::Readdir { entries })
                            if entries
                                .iter()
                                .filter(|(_, _, n)| n.starts_with('f'))
                                .count()
                                == 8 => {}
                        _ => {
                            stale.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A path that never existed never resolves.
                    if resps[4].status != Status::Fs(FsError::NoEnt) {
                        stale.fetch_add(1, Ordering::Relaxed);
                    }

                    // Quiescent-window judging of the renamed pair.
                    let before = flips.load(Ordering::SeqCst);
                    let pair = client.call(&[
                        Request {
                            id: 10,
                            cred: 1,
                            body: ReqBody::Lookup {
                                path: "/s/flip/f0",
                                want_sig: false,
                            },
                        },
                        Request {
                            id: 11,
                            cred: 1,
                            body: ReqBody::Lookup {
                                path: "/s/gone/f0",
                                want_sig: false,
                            },
                        },
                    ]);
                    let after = flips.load(Ordering::SeqCst);
                    let at_flip = pair[0].status == Status::Ok;
                    let at_gone = pair[1].status == Status::Ok;
                    if before == after && at_flip == at_gone {
                        stale.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        stale.load(Ordering::Relaxed),
        0,
        "stale or incoherent served snapshots observed under race"
    );
    assert!(
        flips.load(Ordering::SeqCst) > 0,
        "renamer never completed a flip; the race is vacuous"
    );

    // Final state is fully visible through the server.
    let client = Client::new(server.connect());
    for i in 0..8 {
        let resps = client.call(&[Request {
            id: i,
            cred: 1,
            body: ReqBody::Stat {
                path: &format!("/s/perm/f{i}"),
            },
        }]);
        let RespBody::Stat { attr } = &resps[0].body else {
            panic!("final stat failed: {resps:?}");
        };
        assert_eq!(attr.mode, MODES[0], "final chmod lost on /s/perm/f{i}");
    }

    // Accounting reconciles under served concurrency: the batch pin
    // collapses nested per-lookup pins, and both the stat and the
    // event are bumped only at the outermost pin.
    let obs = k.obs().obs().expect("recorder is enabled");
    let st = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let stats = &k.dcache.stats;
    assert_eq!(obs.event_count(EventKind::EpochPin), st(&stats.epoch_pins));
    assert_eq!(
        obs.event_count(EventKind::ReadRetry),
        st(&stats.read_retries)
    );
    assert_eq!(
        obs.event_count(EventKind::SeqRetry),
        st(&stats.slow_retries)
    );
    assert_eq!(obs.event_count(EventKind::LookupStart), st(&stats.lookups));
    assert_eq!(
        obs.event_count(EventKind::ServeBatch),
        server.stats().batches.load(Ordering::Relaxed)
    );
    assert_eq!(
        obs.event_count(EventKind::ServeConn),
        server.stats().conns.load(Ordering::Relaxed)
    );
    assert_eq!(obs.event_count(EventKind::ServeReject), 0);
}
