//! Property test: crash consistency holds for *arbitrary* op streams
//! and *arbitrary* cut points, not just the seeded campaign.
//!
//! proptest generates a random metadata op sequence and a random
//! fraction of the run's device-write stream; power is cut at that
//! write (sometimes tearing it), the image is remounted, and the
//! recovered file system must (a) pass `fsck` with zero errors and
//! (b) present exactly the metadata tree of the committed-operation
//! prefix the journal recovered to — replayed on a shadow file system.
//!
//! Gated behind `--features proptest-tests` (the vendored placeholder
//! crate cannot run real property tests); CI's nightly lane runs it.

use dcache_repro::blockdev::{CachedDisk, CrashMonitor, DiskConfig, LatencyModel};
use dcache_repro::fs::{fsck, FileSystem, FileType, MemFs, MemFsConfig, SetAttr};
use proptest::prelude::*;
use std::sync::Arc;

const CACHE_PAGES: usize = 128;

fn new_disk() -> Arc<CachedDisk> {
    Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 13,
        cache_pages: CACHE_PAGES,
        latency: LatencyModel::free(),
        ..Default::default()
    }))
}

fn new_fs(disk: Arc<CachedDisk>) -> Arc<MemFs> {
    MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 1 << 10,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Path-addressed ops over a tiny namespace (two directory levels, six
/// names) so sequences collide often: creates over existing names,
/// unlinks of ghosts, renames across directories.
#[derive(Clone, Debug)]
enum Op {
    Mkdir(u8, &'static str),
    Create(u8, &'static str),
    Symlink(u8, &'static str),
    Write(u8, &'static str, usize),
    Unlink(u8, &'static str),
    Rmdir(u8, &'static str),
    Rename(u8, &'static str, u8, &'static str),
    Chmod(u8, &'static str, u16),
}

const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "x", "zz"];
const TOPS: usize = 3;

fn name() -> impl Strategy<Value = &'static str> {
    (0usize..NAMES.len()).prop_map(|i| NAMES[i])
}

fn top() -> impl Strategy<Value = u8> {
    0u8..TOPS as u8
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (top(), name()).prop_map(|(d, n)| Op::Create(d, n)),
        2 => (top(), name()).prop_map(|(d, n)| Op::Mkdir(d, n)),
        1 => (top(), name()).prop_map(|(d, n)| Op::Symlink(d, n)),
        1 => (top(), name(), 1usize..6000).prop_map(|(d, n, l)| Op::Write(d, n, l)),
        2 => (top(), name()).prop_map(|(d, n)| Op::Unlink(d, n)),
        1 => (top(), name()).prop_map(|(d, n)| Op::Rmdir(d, n)),
        2 => (top(), name(), top(), name()).prop_map(|(a, b, c, d)| Op::Rename(a, b, c, d)),
        1 => (top(), name(), prop_oneof![Just(0o600u16), Just(0o755), Just(0o444)])
            .prop_map(|(d, n, m)| Op::Chmod(d, n, m)),
    ]
}

fn topname(d: u8) -> String {
    format!("t{d}")
}

/// Applies one op, resolving paths by lookup so the same stream replays
/// on any file-system state. Failures are expected and commit nothing.
fn apply(fs: &MemFs, op: &Op) -> bool {
    let root = fs.root_ino();
    let dir = |d: u8| fs.lookup(root, &topname(d)).map(|a| a.ino);
    match op {
        Op::Mkdir(d, n) => dir(*d).and_then(|di| fs.mkdir(di, n, 0o755, 0, 0)).is_ok(),
        Op::Create(d, n) => dir(*d).and_then(|di| fs.create(di, n, 0o644, 0, 0)).is_ok(),
        Op::Symlink(d, n) => dir(*d)
            .and_then(|di| fs.symlink(di, n, "../target", 0, 0))
            .is_ok(),
        Op::Write(d, n, len) => dir(*d)
            .and_then(|di| fs.lookup(di, n))
            .and_then(|a| fs.write(a.ino, 0, &vec![0x77u8; *len]))
            .is_ok(),
        Op::Unlink(d, n) => dir(*d).and_then(|di| fs.unlink(di, n)).is_ok(),
        Op::Rmdir(d, n) => dir(*d).and_then(|di| fs.rmdir(di, n)).is_ok(),
        Op::Rename(od, on, nd, nn) => match (dir(*od), dir(*nd)) {
            (Ok(a), Ok(b)) => fs.rename(a, on, b, nn).is_ok(),
            _ => false,
        },
        Op::Chmod(d, n, m) => dir(*d)
            .and_then(|di| fs.lookup(di, n))
            .and_then(|a| {
                fs.setattr(
                    a.ino,
                    SetAttr {
                        mode: Some(*m),
                        ..Default::default()
                    },
                )
            })
            .is_ok(),
    }
}

fn tree_sig(fs: &MemFs, ino: u64, path: &str, out: &mut Vec<String>) {
    let a = fs.getattr(ino).expect("reachable inode readable");
    let link = if a.ftype == FileType::Symlink {
        fs.readlink(ino).unwrap_or_default()
    } else {
        String::new()
    };
    out.push(format!(
        "{path} {:?} {:o} {} {} {link}",
        a.ftype, a.mode, a.nlink, a.size
    ));
    if !a.ftype.is_dir() {
        return;
    }
    let mut entries = Vec::new();
    let mut cursor = 0u64;
    while let Some(next) = fs.readdir(ino, cursor, 64, &mut entries).unwrap() {
        cursor = next;
    }
    entries.sort_by(|x, y| x.name.cmp(&y.name));
    for e in entries {
        tree_sig(fs, e.ino, &format!("{path}/{}", e.name), out);
    }
}

fn full_sig(fs: &MemFs) -> Vec<String> {
    let mut out = Vec::new();
    tree_sig(fs, fs.root_ino(), "", &mut out);
    out
}

/// Runs the stream after planting the top-level dirs; returns the
/// committed-op boundaries `(seq, ops_applied)` and the device writes
/// issued while armed.
fn run_ops(
    fs: &MemFs,
    ops: &[Op],
    monitor: Option<&Arc<CrashMonitor>>,
) -> (Vec<(u64, usize)>, u64) {
    for d in 0..TOPS as u8 {
        fs.mkdir(fs.root_ino(), &topname(d), 0o755, 0, 0).unwrap();
    }
    fs.sync().unwrap();
    let writes0 = fs.disk().stats().device_writes;
    if let Some(m) = monitor {
        m.arm();
    }
    let mut boundaries = vec![(fs.journal_seq().unwrap(), 0usize)];
    for (i, op) in ops.iter().enumerate() {
        if apply(fs, op) {
            let seq = fs.journal_seq().unwrap();
            match boundaries.last_mut() {
                Some(last) if last.0 == seq => last.1 = i + 1,
                _ => boundaries.push((seq, i + 1)),
            }
        }
    }
    if let Some(m) = monitor {
        m.disarm();
    }
    (boundaries, fs.disk().stats().device_writes - writes0)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 400,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_cut_point_recovers_to_a_committed_prefix(
        ops in prop::collection::vec(op(), 10..80),
        cut_frac in 1u32..=1000,
        tear_seed in any::<u64>(),
        tear in prop::bool::ANY,
    ) {
        // Pass 1: learn the write count for this particular stream.
        let fs1 = new_fs(new_disk());
        let (_, writes) = run_ops(&fs1, &ops, None);
        prop_assume!(writes > 0);

        // Pass 2: identical run, cut at the chosen write ordinal.
        let ordinal = 1 + (writes - 1) * cut_frac as u64 / 1000;
        let monitor = Arc::new(CrashMonitor::at_points(
            vec![ordinal],
            tear_seed,
            if tear { 1.0 } else { 0.0 },
        ));
        let disk = new_disk();
        disk.attach_crash_monitor(monitor.clone());
        let fs2 = new_fs(disk);
        let (boundaries, _) = run_ops(&fs2, &ops, Some(&monitor));
        let images = monitor.take_images();
        prop_assert_eq!(images.len(), 1, "the scheduled cut must fire");
        let img = &images[0];

        // Remount, fsck, prefix-compare.
        let rdisk = Arc::new(CachedDisk::from_image(img, CACHE_PAGES, LatencyModel::free()));
        let rfs = MemFs::mount(rdisk.clone()).expect("remount after cut");
        let report = fsck(&rdisk).unwrap();
        prop_assert!(
            report.is_clean(),
            "cut@{} (torn: {:?}): fsck errors: {:?}",
            img.cut_at_write, img.torn_block, report.errors
        );
        let rseq = rfs.recovered_seq();
        let idx = boundaries.binary_search_by_key(&rseq, |b| b.0);
        prop_assert!(
            idx.is_ok(),
            "recovered seq {} is not a committed-op boundary ({:?})",
            rseq, boundaries
        );
        let prefix = boundaries[idx.unwrap()].1;
        let shadow = new_fs(new_disk());
        let (_, _) = run_ops(&shadow, &ops[..prefix], None);
        prop_assert_eq!(
            full_sig(&rfs),
            full_sig(&shadow),
            "cut@{}: recovered tree differs from the {}-op shadow prefix",
            img.cut_at_write, prefix
        );
    }
}
