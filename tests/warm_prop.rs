//! Property test: warm restart is *observationally cold* for arbitrary
//! op streams, arbitrary checkpoint positions, and arbitrary cut points.
//!
//! proptest generates a random metadata op stream, a random position in
//! it at which `Kernel::warm_checkpoint` persists the directory index,
//! and a random device-write ordinal at which power is cut (possibly
//! mid-checkpoint, tearing the index itself). The image is remounted
//! twice — once with warm restart, once cold — and the two kernels must
//! present the identical namespace over the whole (finite) path
//! universe. Since the cold mount *is* the shadow replay of the
//! committed prefix (`crash_prop.rs` proves that equivalence), this
//! pins the rehydrated DLHT set to exactly a subset of the shadow's
//! live entries: nothing phantom, nothing stale, and the published
//! count never exceeds the live-entry count.
//!
//! Gated behind `--features proptest-tests` (the vendored placeholder
//! crate cannot run real property tests); CI's nightly lane runs it.

use dcache_repro::blockdev::{CachedDisk, CrashMonitor, DiskConfig, LatencyModel};
use dcache_repro::fs::{fsck, FileType, MemFs, MemFsConfig};
use dcache_repro::vfs::Kernel;
use dcache_repro::{DcacheConfig, KernelBuilder, OpenFlags, Process};
use proptest::prelude::*;
use std::sync::Arc;

const CACHE_PAGES: usize = 8192;

fn new_disk() -> Arc<CachedDisk> {
    Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 13,
        cache_pages: CACHE_PAGES,
        latency: LatencyModel::free(),
        ..Default::default()
    }))
}

fn new_fs(disk: Arc<CachedDisk>) -> Arc<MemFs> {
    MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 1 << 10,
            ..Default::default()
        },
    )
    .unwrap()
}

fn kernel_on(fs: Arc<MemFs>, warm: bool) -> Arc<Kernel> {
    KernelBuilder::new(DcacheConfig::optimized())
        .root_fs(fs)
        .warm_restart(warm)
        .build()
        .unwrap()
}

/// Path-addressed ops over a tiny namespace (three top dirs, six names)
/// so streams collide often: creates over existing names, unlinks of
/// ghosts, renames across directories, rmdirs of non-empty dirs.
#[derive(Clone, Debug)]
enum Op {
    Mkdir(u8, &'static str),
    Create(u8, &'static str),
    Unlink(u8, &'static str),
    Rmdir(u8, &'static str),
    Rename(u8, &'static str, u8, &'static str),
}

const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "x", "zz"];
const TOPS: usize = 3;

fn name() -> impl Strategy<Value = &'static str> {
    (0usize..NAMES.len()).prop_map(|i| NAMES[i])
}

fn top() -> impl Strategy<Value = u8> {
    0u8..TOPS as u8
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (top(), name()).prop_map(|(d, n)| Op::Create(d, n)),
        2 => (top(), name()).prop_map(|(d, n)| Op::Mkdir(d, n)),
        2 => (top(), name()).prop_map(|(d, n)| Op::Unlink(d, n)),
        1 => (top(), name()).prop_map(|(d, n)| Op::Rmdir(d, n)),
        2 => (top(), name(), top(), name()).prop_map(|(a, b, c, d)| Op::Rename(a, b, c, d)),
    ]
}

fn leaf(d: u8, n: &str) -> String {
    format!("/t{d}/{n}")
}

/// Applies one op through the syscall surface. Failures are expected
/// (ghost unlinks, creates over dirs, …) and commit nothing.
fn apply(k: &Kernel, p: &Process, op: &Op) {
    let _ = match op {
        Op::Mkdir(d, n) => k.mkdir(p, &leaf(*d, n), 0o755),
        Op::Create(d, n) => k
            .open(p, &leaf(*d, n), OpenFlags::create(), 0o644)
            .and_then(|fd| k.close(p, fd)),
        Op::Unlink(d, n) => k.unlink(p, &leaf(*d, n)),
        Op::Rmdir(d, n) => k.rmdir(p, &leaf(*d, n)),
        Op::Rename(a, b, c, d) => k.rename(p, &leaf(*a, b), &leaf(*c, d)),
    };
}

/// Every path the op universe can ever name: the three top dirs plus
/// each (dir, name) leaf.
fn universe() -> Vec<String> {
    let mut paths: Vec<String> = (0..TOPS).map(|d| format!("/t{d}")).collect();
    for d in 0..TOPS as u8 {
        for n in NAMES {
            paths.push(leaf(d, n));
        }
    }
    paths
}

/// The observable namespace: what `stat` answers for every universe
/// path. Two kernels over the same tree must produce identical views.
fn view(k: &Kernel, p: &Process) -> Vec<(String, Option<(u64, FileType)>)> {
    universe()
        .into_iter()
        .map(|path| {
            let got = k.stat(p, &path).ok().map(|a| (a.ino, a.ftype));
            (path, got)
        })
        .collect()
}

/// Plants the top dirs, syncs, then runs the stream with the warm
/// checkpoint inserted at `checkpoint_at` (clamped to the stream);
/// returns the device writes issued while the monitor window was open.
fn run_stream(
    k: &Kernel,
    fs: &MemFs,
    ops: &[Op],
    checkpoint_at: usize,
    monitor: Option<&Arc<CrashMonitor>>,
) -> u64 {
    let p = k.init_process();
    for d in 0..TOPS as u8 {
        k.mkdir(&p, &format!("/t{d}"), 0o755).unwrap();
    }
    fs.sync().unwrap();
    let writes0 = fs.disk().stats().device_writes;
    if let Some(m) = monitor {
        m.arm();
    }
    let checkpoint_at = checkpoint_at.min(ops.len());
    for (i, op) in ops.iter().enumerate() {
        if i == checkpoint_at {
            k.warm_checkpoint().unwrap();
        }
        apply(k, &p, op);
    }
    if checkpoint_at == ops.len() {
        k.warm_checkpoint().unwrap();
    }
    if let Some(m) = monitor {
        m.disarm();
    }
    fs.disk().stats().device_writes - writes0
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 400,
        ..ProptestConfig::default()
    })]

    /// Power cut at an arbitrary write ordinal — before, during, or
    /// after the index checkpoint. The warm mount of the image must be
    /// observationally identical to a cold mount of the same image.
    #[test]
    fn warm_restart_after_any_cut_is_observationally_cold(
        ops in prop::collection::vec(op(), 10..80),
        checkpoint_at in 0usize..80,
        cut_frac in 1u32..=1000,
        tear_seed in any::<u64>(),
        tear in prop::bool::ANY,
    ) {
        // Pass 1: learn the write count for this particular stream.
        let fs1 = new_fs(new_disk());
        let k1 = kernel_on(fs1.clone(), false);
        let writes = run_stream(&k1, &fs1, &ops, checkpoint_at, None);
        drop(k1);
        prop_assume!(writes > 0);

        // Pass 2: identical run, cut at the chosen write ordinal.
        let ordinal = 1 + (writes - 1) * cut_frac as u64 / 1000;
        let monitor = Arc::new(CrashMonitor::at_points(
            vec![ordinal],
            tear_seed,
            if tear { 1.0 } else { 0.0 },
        ));
        let disk = new_disk();
        disk.attach_crash_monitor(monitor.clone());
        let fs2 = new_fs(disk);
        let k2 = kernel_on(fs2.clone(), false);
        run_stream(&k2, &fs2, &ops, checkpoint_at, Some(&monitor));
        drop(k2);
        let images = monitor.take_images();
        prop_assert_eq!(images.len(), 1, "the scheduled cut must fire");
        let img = &images[0];

        // Warm mount: rehydrate the dcache from whatever index (whole,
        // torn, or absent) the cut left behind.
        let wdisk = Arc::new(CachedDisk::from_image(img, CACHE_PAGES, LatencyModel::free()));
        let wfs = MemFs::mount(wdisk.clone()).expect("warm remount after cut");
        let wk = kernel_on(wfs, true);
        let outcome = wk.warm_outcome().expect("builder ran a warm restart");
        if outcome.fallback.is_none() {
            prop_assert_eq!(
                outcome.attempted, outcome.published + outcome.rejected,
                "every index entry must publish or reject: {:?}", outcome
            );
        }
        let wp = wk.init_process();
        let warm_view = view(&wk, &wp);

        // Cold mount of the same image: the committed-prefix shadow.
        let cdisk = Arc::new(CachedDisk::from_image(img, CACHE_PAGES, LatencyModel::free()));
        let ck = kernel_on(MemFs::mount(cdisk.clone()).unwrap(), false);
        let cp = ck.init_process();
        let cold_view = view(&ck, &cp);

        let live = cold_view.iter().filter(|(_, got)| got.is_some()).count();
        prop_assert!(
            outcome.published <= live as u64,
            "cut@{}: published {} entries but only {} are live ({:?})",
            img.cut_at_write, outcome.published, live, outcome
        );
        prop_assert_eq!(
            warm_view, cold_view,
            "cut@{} (torn: {:?}, checkpoint@{}): warm namespace diverges from cold ({:?})",
            img.cut_at_write, img.torn_block, checkpoint_at, outcome
        );
        // The index pass rides along: fsck must accept whatever the cut
        // left in the warm-index region.
        let report = fsck(&wdisk).unwrap();
        prop_assert!(
            report.is_clean(),
            "cut@{}: fsck errors {:?}",
            img.cut_at_write, report.errors
        );
    }

    /// Clean-shutdown variant: no cut, the stream simply continues past
    /// the checkpoint, so the index is stale by an arbitrary suffix of
    /// ops. Rehydration must reject exactly the stale entries — the
    /// warm view still equals the cold view.
    #[test]
    fn warm_restart_after_stale_suffix_is_observationally_cold(
        ops in prop::collection::vec(op(), 5..60),
        checkpoint_at in 0usize..60,
    ) {
        let disk = new_disk();
        let fs = new_fs(disk.clone());
        let k1 = kernel_on(fs.clone(), false);
        run_stream(&k1, &fs, &ops, checkpoint_at, None);
        fs.sync().unwrap();
        drop(k1);
        drop(fs);

        let wk = kernel_on(MemFs::mount(disk.clone()).unwrap(), true);
        let outcome = wk.warm_outcome().expect("builder ran a warm restart");
        prop_assert!(
            outcome.fallback.is_none(),
            "clean shutdown left a valid index, got {:?}",
            outcome.fallback
        );
        prop_assert_eq!(outcome.attempted, outcome.published + outcome.rejected);
        let wp = wk.init_process();
        let warm_view = view(&wk, &wp);
        drop(wp);
        drop(wk);

        let ck = kernel_on(MemFs::mount(disk).unwrap(), false);
        let cp = ck.init_process();
        prop_assert_eq!(
            warm_view, view(&ck, &cp),
            "checkpoint@{checkpoint_at}: warm namespace diverges from cold ({:?})",
            outcome
        );
    }
}
