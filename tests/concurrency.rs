//! Concurrent lookups racing structural changes: the optimistic walk +
//! seqlock + invalidation-counter protocol of §3.2 under real threads.

use dcache_repro::cred::Cred;
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn kernel(config: DcacheConfig) -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(config.with_seed(123)).build().unwrap();
    let p = k.init_process();
    (k, p)
}

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

#[test]
fn readers_race_renames_without_stale_results() {
    for config in [
        DcacheConfig::baseline(),
        DcacheConfig::optimized(),
        DcacheConfig::optimized().with_locked_reads(),
    ] {
        let (k, p) = kernel(config);
        k.mkdir(&p, "/race", 0o755).unwrap();
        k.mkdir(&p, "/race/a", 0o755).unwrap();
        touch(&k, &p, "/race/a/file");
        let stop = Arc::new(AtomicBool::new(false));
        let anomalies = Arc::new(AtomicU64::new(0));
        // Seqlock-style rename epoch: odd while a rename is in flight,
        // even when quiescent. Readers only judge windows whose epoch
        // was even and unchanged — bumping only *after* the rename
        // would leave a gap where a completed (visible) rename hasn't
        // been counted yet and a reader wrongly judges the window.
        let flips = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            // Renamer: flips the directory between two names.
            {
                let k = k.clone();
                let p = k.spawn(&p);
                let stop = stop.clone();
                let flips = flips.clone();
                s.spawn(move || {
                    let mut flip = false;
                    while !stop.load(Ordering::Relaxed) {
                        let (from, to) = if flip {
                            ("/race/b", "/race/a")
                        } else {
                            ("/race/a", "/race/b")
                        };
                        flips.fetch_add(1, Ordering::SeqCst);
                        k.rename(&p, from, to).unwrap();
                        flips.fetch_add(1, Ordering::SeqCst);
                        flip = !flip;
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                    if flip {
                        flips.fetch_add(1, Ordering::SeqCst);
                        k.rename(&p, "/race/b", "/race/a").unwrap();
                        flips.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            // Readers: within a quiescent window (no rename in flight
            // or completed between the two stats), exactly one path
            // must resolve.
            for _ in 0..4 {
                let k = k.clone();
                let p = k.spawn(&p);
                let stop = stop.clone();
                let flips = flips.clone();
                let anomalies = anomalies.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let f0 = flips.load(Ordering::SeqCst);
                        let a = k.stat(&p, "/race/a/file");
                        let b = k.stat(&p, "/race/b/file");
                        let f1 = flips.load(Ordering::SeqCst);
                        if f0 != f1 || f0 % 2 == 1 {
                            continue; // a rename interleaved; not judgeable
                        }
                        match (a, b) {
                            (Ok(_), Err(FsError::NoEnt)) | (Err(FsError::NoEnt), Ok(_)) => {}
                            (x, y) => {
                                eprintln!("quiescent anomaly: {x:?} {y:?}");
                                anomalies.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            anomalies.load(Ordering::Relaxed),
            0,
            "stale lookups observed"
        );
        // Quiesced state is correct.
        assert!(k.stat(&p, "/race/a/file").is_ok());
        assert_eq!(k.stat(&p, "/race/b/file"), Err(FsError::NoEnt));
    }
}

#[test]
fn permission_revocation_is_never_raced_past() {
    let (k, root) = kernel(DcacheConfig::optimized());
    k.mkdir(&root, "/sec", 0o755).unwrap();
    k.mkdir(&root, "/sec/inner", 0o755).unwrap();
    touch(&k, &root, "/sec/inner/file");
    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));
    // The gate: even = open, odd = locked. The chmod thread updates the
    // gate BEFORE granting and AFTER revoking, so a reader observing
    // "locked" must never succeed.
    let gate = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        {
            let k = k.clone();
            let p = k.spawn(&root);
            let stop = stop.clone();
            let gate = gate.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Revoke fully, THEN declare locked — so "gate odd"
                    // implies the restrictive mode is in force.
                    k.chmod(&p, "/sec", 0o700).unwrap();
                    gate.fetch_add(1, Ordering::SeqCst); // odd
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    // Declare open BEFORE granting, for the same reason.
                    gate.fetch_add(1, Ordering::SeqCst); // even
                    k.chmod(&p, "/sec", 0o755).unwrap();
                }
                k.chmod(&p, "/sec", 0o755).unwrap();
            });
        }
        for _ in 0..4 {
            let k = k.clone();
            let alice = k.spawn_with_cred(&root, Cred::user(1000, 1000));
            let stop = stop.clone();
            let gate = gate.clone();
            let violations = violations.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let before = gate.load(Ordering::SeqCst);
                    let r = k.stat(&alice, "/sec/inner/file");
                    let after = gate.load(Ordering::SeqCst);
                    // If the permission was revoked for the entire window
                    // of the call, success is a violation.
                    if before == after && before % 2 == 1 && r.is_ok() {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "stale memoized prefix check granted revoked access"
    );
}

#[test]
fn concurrent_creates_in_one_directory() {
    for config in [
        DcacheConfig::baseline(),
        DcacheConfig::optimized(),
        DcacheConfig::optimized().with_locked_reads(),
    ] {
        let (k, p) = kernel(config);
        k.mkdir(&p, "/mk", 0o755).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let k = k.clone();
                let p = k.spawn(&p);
                s.spawn(move || {
                    for i in 0..100 {
                        let path = format!("/mk/t{t}-{i}");
                        let fd = k.open(&p, &path, OpenFlags::create(), 0o644).unwrap();
                        k.close(&p, fd).unwrap();
                        assert!(k.stat(&p, &path).is_ok());
                    }
                });
            }
        });
        let listing = k.list_dir(&p, "/mk").unwrap();
        assert_eq!(listing.len(), 400);
        // Exclusive creation raced from two threads: exactly one winner.
        let winners = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let k = k.clone();
                let p = k.spawn(&p);
                let winners = winners.clone();
                s.spawn(move || {
                    if let Ok(fd) = k.open(&p, "/mk/excl", OpenFlags::create_excl(), 0o600) {
                        winners.fetch_add(1, Ordering::Relaxed);
                        k.close(&p, fd).unwrap();
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }
}

#[test]
fn mkstemp_is_race_free_across_threads() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/tmp", 0o777).unwrap();
    let names = parking_lot::Mutex::new(std::collections::HashSet::new());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let k = k.clone();
            let p = k.spawn(&p);
            let names = &names;
            s.spawn(move || {
                for _ in 0..50 {
                    let (fd, name) = k.mkstemp(&p, "/tmp", "c-").unwrap();
                    k.close(&p, fd).unwrap();
                    assert!(names.lock().insert(name), "duplicate temp name");
                }
            });
        }
    });
    assert_eq!(k.list_dir(&p, "/tmp").unwrap().len(), 200);
}

#[test]
fn lookups_scale_across_threads_without_errors() {
    for config in [
        DcacheConfig::baseline(),
        DcacheConfig::optimized(),
        DcacheConfig::legacy_lock_walk(),
    ] {
        let (k, p) = kernel(config);
        k.mkdir(&p, "/deep", 0o755).unwrap();
        k.mkdir(&p, "/deep/a", 0o755).unwrap();
        k.mkdir(&p, "/deep/a/b", 0o755).unwrap();
        touch(&k, &p, "/deep/a/b/target");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let k = k.clone();
                let p = k.spawn(&p);
                s.spawn(move || {
                    for _ in 0..2000 {
                        assert!(!k.stat(&p, "/deep/a/b/target").unwrap().ftype.is_dir());
                    }
                });
            }
        });
    }
}

#[test]
fn negative_dentries_cohere_under_concurrent_rename() {
    // The §5.2 negative-dentry gap in the rename protocol: a cached
    // ENOENT for a name must die the moment a rename gives that name a
    // file. Readers hammer a name that alternates between absent
    // (negative dentry served from the cache) and present (rename moved
    // a real file onto it); in any window with no rename completion, a
    // stale cached ENOENT for an existing file — or a stale hit for an
    // absent one — is an anomaly.
    for config in [
        DcacheConfig::baseline(),
        DcacheConfig::optimized(),
        DcacheConfig::optimized().with_locked_reads(),
    ] {
        let wants_negative = config.negative_dentries;
        let (k, p) = kernel(config);
        k.mkdir(&p, "/neg", 0o755).unwrap();
        touch(&k, &p, "/neg/real");
        // Prime a negative dentry for the contested name.
        assert_eq!(k.stat(&p, "/neg/ghost"), Err(FsError::NoEnt));
        let stop = Arc::new(AtomicBool::new(false));
        let anomalies = Arc::new(AtomicU64::new(0));
        let flips = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            // Renamer: moves the real file onto the negatively-cached
            // name and back, so "ghost" oscillates between ENOENT and
            // existing.
            {
                let k = k.clone();
                let p = k.spawn(&p);
                let stop = stop.clone();
                let flips = flips.clone();
                s.spawn(move || {
                    let mut onto_ghost = true;
                    while !stop.load(Ordering::Relaxed) {
                        let (from, to) = if onto_ghost {
                            ("/neg/real", "/neg/ghost")
                        } else {
                            ("/neg/ghost", "/neg/real")
                        };
                        k.rename(&p, from, to).unwrap();
                        flips.fetch_add(1, Ordering::SeqCst);
                        onto_ghost = !onto_ghost;
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                    if !onto_ghost {
                        k.rename(&p, "/neg/ghost", "/neg/real").unwrap();
                    }
                });
            }
            // Readers: in a quiescent window exactly one of the two
            // names resolves; both-ENOENT means a rename target kept its
            // stale negative dentry, both-Ok means the source kept its
            // stale positive one.
            for _ in 0..4 {
                let k = k.clone();
                let p = k.spawn(&p);
                let stop = stop.clone();
                let flips = flips.clone();
                let anomalies = anomalies.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let f0 = flips.load(Ordering::SeqCst);
                        let ghost = k.stat(&p, "/neg/ghost");
                        let real = k.stat(&p, "/neg/real");
                        let f1 = flips.load(Ordering::SeqCst);
                        if f0 != f1 {
                            continue; // rename interleaved; not judgeable
                        }
                        match (ghost, real) {
                            (Ok(_), Err(FsError::NoEnt)) | (Err(FsError::NoEnt), Ok(_)) => {}
                            (x, y) => {
                                eprintln!("negative-coherence anomaly: ghost={x:?} real={y:?}");
                                anomalies.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            anomalies.load(Ordering::Relaxed),
            0,
            "stale negative/positive dentries observed under rename"
        );
        // Negative caching was genuinely in play: misses were answered
        // from cached negatives, completeness, or freshly created
        // negative dentries (which path depends on the config).
        if wants_negative {
            let st = &k.dcache.stats;
            let negative_activity = st.neg_created.load(Ordering::Relaxed)
                + st.hit_negative.load(Ordering::Relaxed)
                + st.complete_neg_avoided.load(Ordering::Relaxed);
            assert!(negative_activity > 0, "negative caching never engaged");
        }
        // Quiesced state: the file is back at /neg/real and the old
        // negative name answers ENOENT again.
        assert!(k.stat(&p, "/neg/real").is_ok());
        assert_eq!(k.stat(&p, "/neg/ghost"), Err(FsError::NoEnt));
    }
}

#[test]
fn journaled_apply_is_invisible_in_flight_to_memfs_readers() {
    // Regression for the journal's commit-time apply: an operation's
    // buffered write set reaches the shared page cache only at commit,
    // and that apply must run under the operation's inode shard locks.
    // Otherwise a reader that legally holds the directory lock can
    // observe a half-applied operation — here, a same-directory rename
    // whose remove and insert land in different directory blocks, with
    // a window where the name exists in neither.
    use dcache_repro::blockdev::{CachedDisk, DiskConfig, LatencyModel};
    use dcache_repro::fs::{FileSystem, MemFs, MemFsConfig};

    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 14,
        latency: LatencyModel::free(),
        ..Default::default()
    }));
    let fs = MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 1 << 12,
            ..Default::default()
        },
    )
    .unwrap();
    let r = fs.root_ino();
    let arena = fs.mkdir(r, "arena", 0o755, 0, 0).unwrap().ino;
    // Pack the first directory block: "a" early, then wide fillers, so
    // renaming "a" to a long name forces the insert into a different
    // block than the remove — two distinct block writes in one
    // transaction.
    fs.create(arena, "a", 0o644, 0, 0).unwrap();
    for i in 0.. {
        let filler = format!("{:x<200}", format!("filler{i}-"));
        fs.create(arena, &filler, 0o644, 0, 0).unwrap();
        if fs.getattr(arena).unwrap().size > 4096 {
            break;
        }
    }
    let b_name = "b".repeat(200);

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let observer = {
            let fs = fs.clone();
            let stop = stop.clone();
            let b_name = b_name.clone();
            s.spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut out = Vec::new();
                    fs.readdir(arena, 0, usize::MAX, &mut out).unwrap();
                    let a = out.iter().any(|e| e.name == "a");
                    let b = out.iter().any(|e| e.name == b_name);
                    assert!(a ^ b, "half-applied rename visible to readdir: a={a} b={b}");
                    checks += 1;
                }
                checks
            })
        };
        for _ in 0..400 {
            fs.rename(arena, "a", arena, &b_name).unwrap();
            fs.rename(arena, &b_name, arena, "a").unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(observer.join().unwrap() > 0, "observer never ran");
    });
}
