//! Mounts, bind mounts (mount aliases), mount flags, pseudo file
//! systems, mount namespaces, and chroot — §4.3 end to end.

use dcache_repro::blockdev::{CachedDisk, DiskConfig};
use dcache_repro::fs::{FileSystem, FsError, MemFs, MemFsConfig, PseudoFs};
use dcache_repro::vfs::MountFlags;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

fn both(test: impl Fn(Arc<Kernel>, Arc<Process>)) {
    for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
        let k = KernelBuilder::new(config.with_seed(88)).build().unwrap();
        test(k.clone(), k.init_process());
    }
}

fn small_memfs() -> Arc<dyn FileSystem> {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 8192,
        ..Default::default()
    }));
    MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 4096,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn mount_and_umount_cycle() {
    both(|k, root| {
        k.mkdir(&root, "/mnt", 0o755).unwrap();
        // The mountpoint holds a marker file that the mount covers.
        k.mkdir(&root, "/mnt/disk", 0o755).unwrap();
        let fd = k
            .open(&root, "/mnt/disk/under", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();
        // Warm the cache on the covered path.
        for _ in 0..3 {
            assert!(k.stat(&root, "/mnt/disk/under").is_ok());
        }
        let fs = small_memfs();
        k.mount_fs(&root, fs, "/mnt/disk", MountFlags::default())
            .unwrap();
        // The mount covers the old content...
        assert_eq!(k.stat(&root, "/mnt/disk/under"), Err(FsError::NoEnt));
        // ...and the new file system is live.
        let fd = k
            .open(&root, "/mnt/disk/on-new-fs", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();
        assert!(k.stat(&root, "/mnt/disk/on-new-fs").is_ok());
        // Dot-dot climbs out of the mount.
        assert!(k.stat(&root, "/mnt/disk/..").is_ok());
        k.chdir(&root, "/mnt/disk").unwrap();
        assert!(k.stat(&root, "../..").is_ok());
        k.chdir(&root, "/").unwrap();
        // Unmount restores the covered content.
        k.umount(&root, "/mnt/disk").unwrap();
        assert!(k.stat(&root, "/mnt/disk/under").is_ok());
        assert_eq!(k.stat(&root, "/mnt/disk/on-new-fs"), Err(FsError::NoEnt));
    });
}

#[test]
fn read_only_mounts_reject_writes() {
    both(|k, root| {
        k.mkdir(&root, "/ro", 0o755).unwrap();
        let fs = small_memfs();
        // Pre-populate through a scratch mount.
        k.mkdir(&root, "/scratch", 0o755).unwrap();
        k.mount_fs(&root, fs.clone(), "/scratch", MountFlags::default())
            .unwrap();
        let fd = k
            .open(&root, "/scratch/data", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();
        k.umount(&root, "/scratch").unwrap();
        k.mount_fs(
            &root,
            fs,
            "/ro",
            MountFlags {
                read_only: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(k.stat(&root, "/ro/data").is_ok());
        assert_eq!(
            k.open(&root, "/ro/new", OpenFlags::create(), 0o644)
                .unwrap_err(),
            FsError::RoFs
        );
        assert_eq!(
            k.open(&root, "/ro/data", OpenFlags::read_write(), 0)
                .unwrap_err(),
            FsError::RoFs
        );
        assert_eq!(k.unlink(&root, "/ro/data"), Err(FsError::RoFs));
        assert_eq!(k.mkdir(&root, "/ro/dir", 0o755), Err(FsError::RoFs));
    });
}

#[test]
fn bind_mounts_alias_the_same_tree() {
    both(|k, root| {
        k.mkdir(&root, "/data", 0o755).unwrap();
        k.mkdir(&root, "/data/sub", 0o755).unwrap();
        let fd = k
            .open(&root, "/data/sub/file", OpenFlags::create(), 0o644)
            .unwrap();
        k.write_fd(&root, fd, b"alias me").unwrap();
        k.close(&root, fd).unwrap();
        k.mkdir(&root, "/view", 0o755).unwrap();
        k.bind_mount(&root, "/data", "/view").unwrap();
        // Same objects through both paths (alternating accesses exercise
        // the one-signature-per-dentry rule, §4.3).
        for _ in 0..3 {
            let a = k.stat(&root, "/data/sub/file").unwrap();
            let b = k.stat(&root, "/view/sub/file").unwrap();
            assert_eq!(a.ino, b.ino);
        }
        // A write through one view is visible through the other.
        let fd = k
            .open(&root, "/view/sub/file", OpenFlags::read_write(), 0)
            .unwrap();
        k.write_fd(&root, fd, b"updated!").unwrap();
        k.close(&root, fd).unwrap();
        assert_eq!(k.stat(&root, "/data/sub/file").unwrap().size, 8);
        // Creations through the alias appear in the origin.
        let fd = k
            .open(&root, "/view/sub/new", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();
        assert!(k.stat(&root, "/data/sub/new").is_ok());
    });
}

#[test]
fn pseudo_fs_mounts_and_negative_policy() {
    for (config, expect_pseudo_negatives) in [
        (DcacheConfig::baseline(), false),
        (DcacheConfig::optimized(), true),
    ] {
        let k = KernelBuilder::new(config.with_seed(89)).build().unwrap();
        let root = k.init_process();
        k.mkdir(&root, "/proc", 0o555).unwrap();
        let proc_fs = PseudoFs::new(0o555);
        proc_fs
            .add_file(proc_fs.root_ino(), "meminfo", 0o444, || {
                b"MemTotal: 1 kB".to_vec()
            })
            .unwrap();
        let pid = proc_fs.add_dir(proc_fs.root_ino(), "1", 0o555).unwrap();
        proc_fs
            .add_file(pid, "status", 0o444, || b"State: R".to_vec())
            .unwrap();
        k.mount_fs(
            &root,
            proc_fs as Arc<dyn FileSystem>,
            "/proc",
            MountFlags::default(),
        )
        .unwrap();
        assert!(k.stat(&root, "/proc/meminfo").is_ok());
        assert!(k.stat(&root, "/proc/1/status").is_ok());
        let fd = k
            .open(&root, "/proc/meminfo", OpenFlags::read_only(), 0)
            .unwrap();
        assert_eq!(&k.read_fd(&root, fd, 64).unwrap()[..], b"MemTotal: 1 kB");
        k.close(&root, fd).unwrap();
        // Mutations are rejected by the pseudo fs itself.
        assert_eq!(
            k.open(&root, "/proc/new", OpenFlags::create(), 0o644)
                .unwrap_err(),
            FsError::Perm
        );
        // Negative-dentry policy: baseline never caches pseudo-fs misses
        // (§5.2); the optimized config does.
        k.reset_stats();
        for _ in 0..5 {
            assert_eq!(k.stat(&root, "/proc/42"), Err(FsError::NoEnt));
        }
        let neg = k.dcache.stats.neg_hit_rate() > 0.0;
        assert_eq!(
            neg, expect_pseudo_negatives,
            "pseudo-fs negative policy mismatch"
        );
    }
}

#[test]
fn namespaces_isolate_mounts() {
    both(|k, root| {
        k.mkdir(&root, "/shared", 0o755).unwrap();
        k.mkdir(&root, "/private", 0o755).unwrap();
        let fd = k
            .open(&root, "/shared/base", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();

        let container = k.spawn(&root);
        let ns = k.unshare_ns(&container).unwrap();
        assert_ne!(ns.id, root.namespace().id);
        // A mount made inside the namespace is invisible outside.
        let fs = small_memfs();
        k.mount_fs(&container, fs, "/private", MountFlags::default())
            .unwrap();
        let fd = k
            .open(&container, "/private/only-here", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&container, fd).unwrap();
        assert!(k.stat(&container, "/private/only-here").is_ok());
        assert_eq!(k.stat(&root, "/private/only-here"), Err(FsError::NoEnt));
        // The underlying tree is still shared (same superblock).
        assert!(k.stat(&container, "/shared/base").is_ok());
        let fd = k
            .open(
                &container,
                "/shared/from-container",
                OpenFlags::create(),
                0o644,
            )
            .unwrap();
        k.close(&container, fd).unwrap();
        assert!(k.stat(&root, "/shared/from-container").is_ok());
    });
}

#[test]
fn chroot_confines_resolution() {
    both(|k, root| {
        k.mkdir(&root, "/jail", 0o755).unwrap();
        k.mkdir(&root, "/jail/etc", 0o755).unwrap();
        let fd = k
            .open(&root, "/jail/etc/conf", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();
        let fd = k
            .open(&root, "/topsecret", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();

        let jailed = k.spawn(&root);
        k.chroot(&jailed, "/jail").unwrap();
        // Inside, paths are jail-relative.
        assert!(k.stat(&jailed, "/etc/conf").is_ok());
        assert_eq!(k.stat(&jailed, "/topsecret"), Err(FsError::NoEnt));
        // Dot-dot cannot escape the jail.
        assert_eq!(k.stat(&jailed, "/../topsecret"), Err(FsError::NoEnt));
        assert_eq!(
            k.stat(&jailed, "/../../.."),
            Ok(k.stat(&jailed, "/").unwrap())
        );
        // Only root may chroot.
        let user = k.spawn_with_cred(&root, dcache_repro::cred::Cred::user(1000, 1000));
        assert_eq!(k.chroot(&user, "/jail"), Err(FsError::Perm));
    });
}

#[test]
fn umount_busy_and_invalid_cases() {
    both(|k, root| {
        k.mkdir(&root, "/m1", 0o755).unwrap();
        let fs = small_memfs();
        k.mount_fs(&root, fs.clone(), "/m1", MountFlags::default())
            .unwrap();
        k.mkdir(&root, "/m1/inner", 0o755).unwrap();
        let fs2 = small_memfs();
        k.mount_fs(&root, fs2, "/m1/inner", MountFlags::default())
            .unwrap();
        // Parent mount is busy while a child mount exists.
        assert_eq!(k.umount(&root, "/m1"), Err(FsError::Busy));
        k.umount(&root, "/m1/inner").unwrap();
        k.umount(&root, "/m1").unwrap();
        // Not a mount root.
        assert_eq!(k.umount(&root, "/m1"), Err(FsError::Inval));
        // rmdir of a mountpoint is EBUSY.
        k.mkdir(&root, "/m2", 0o755).unwrap();
        k.mount_fs(&root, fs, "/m2", MountFlags::default()).unwrap();
        assert_eq!(k.rmdir(&root, "/m2"), Err(FsError::Busy));
    });
}
