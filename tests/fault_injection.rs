//! Fault injection through the full stack: device → page cache → memfs →
//! VFS syscalls → fastpath.
//!
//! Transient faults must be absorbed by the page cache's bounded retry;
//! permanent faults must surface as clean `EIO` (never a panic, never a
//! cached negative dentry) and heal when the device does.

use dcache_repro::blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dcache_repro::fault::{FaultInjector, FaultKind, FaultPlan, FaultRule, IoOp};
use dcache_repro::fs::{fsck, FileSystem, FsError, MemFs, MemFsConfig};
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

/// A kernel whose root memfs sits on a disk with `plan` attached
/// (disarmed). Returns the injector and the disk for the test to drive.
fn faulty_kernel(
    config: DcacheConfig,
    plan: FaultPlan,
) -> (Arc<Kernel>, Arc<FaultInjector>, Arc<CachedDisk>) {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 16,
        latency: LatencyModel::free(),
        ..Default::default()
    }));
    let injector = Arc::new(plan.build());
    disk.attach_fault_injector(injector.clone());
    let memfs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 1 << 16,
            ..Default::default()
        },
    )
    .unwrap();
    let kernel = KernelBuilder::new(config.with_seed(0xFA_017))
        .root_fs(memfs)
        .build()
        .unwrap();
    (kernel, injector, disk)
}

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

#[test]
fn transient_faults_are_invisible_to_syscalls() {
    let plan = FaultPlan::new(0x7AB5)
        .transient(IoOp::Read, 0.05, 2)
        .transient(IoOp::Write, 0.02, 1)
        .short_read(0.01);
    let (k, inj, disk) = faulty_kernel(DcacheConfig::optimized(), plan);
    let p = k.init_process();
    inj.arm();
    for d in 0..4 {
        k.mkdir(&p, &format!("/d{d}"), 0o755).unwrap();
        for f in 0..64 {
            touch(&k, &p, &format!("/d{d}/f{f}"));
        }
    }
    // Force real device reads, repeatedly: every stat below misses the
    // page cache and runs the retry gauntlet.
    for round in 0..4 {
        k.drop_caches();
        for d in 0..4 {
            for f in 0..64 {
                let a = k
                    .stat(&p, &format!("/d{d}/f{f}"))
                    .unwrap_or_else(|e| panic!("round {round}: /d{d}/f{f} failed with {e:?}"));
                assert_eq!(a.ftype, dcache_repro::fs::FileType::Regular);
            }
            assert_eq!(k.list_dir(&p, &format!("/d{d}")).unwrap().len(), 64);
        }
    }
    let s = disk.stats();
    assert!(inj.stats().total() > 0, "faults actually fired");
    assert!(s.io_retries > 0, "retries absorbed the transients");
    assert_eq!(s.io_errors, 0, "nothing leaked past the retry budget");
}

#[test]
fn permanent_faults_surface_eio_and_heal() {
    let plan = FaultPlan::new(0xDEAD).permanent(IoOp::Read, 1.0);
    let (k, inj, _disk) = faulty_kernel(DcacheConfig::optimized(), plan);
    let p = k.init_process();
    k.mkdir(&p, "/a", 0o755).unwrap();
    k.mkdir(&p, "/a/b", 0o755).unwrap();
    touch(&k, &p, "/a/b/f");

    // Warm: everything is served from the dcache, faults can't bite.
    inj.arm();
    assert!(k.stat(&p, "/a/b/f").is_ok(), "cached path unaffected");

    // Cold: the walk needs the device and must fail with a clean EIO.
    k.drop_caches();
    assert_eq!(k.stat(&p, "/a/b/f"), Err(FsError::Io));
    assert_eq!(k.list_dir(&p, "/a"), Err(FsError::Io));
    assert!(
        k.open(&p, "/a/b/f", OpenFlags::read_only(), 0).is_err(),
        "open fails cleanly too"
    );

    // Healing: disarm clears the broken-block set; everything recovers
    // and the cache re-populates.
    inj.disarm();
    assert!(k.stat(&p, "/a/b/f").is_ok(), "device healed");
    assert_eq!(k.list_dir(&p, "/a").unwrap().len(), 1);
    let hits_before = k
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(k.stat(&p, "/a/b/f").is_ok());
    assert!(
        k.dcache
            .stats
            .fast_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            > hits_before,
        "fastpath repopulated after recovery"
    );
}

#[test]
fn eio_never_creates_negative_dentries() {
    let plan = FaultPlan::new(0xBADB).permanent(IoOp::Read, 1.0);
    let (k, inj, _disk) = faulty_kernel(DcacheConfig::optimized(), plan);
    let p = k.init_process();
    k.mkdir(&p, "/dir", 0o755).unwrap();
    touch(&k, &p, "/dir/real");
    k.drop_caches();
    inj.arm();
    // Both a real and a missing path answer EIO while the device is
    // broken — the kernel cannot know which is which.
    assert_eq!(k.stat(&p, "/dir/real"), Err(FsError::Io));
    assert_eq!(k.stat(&p, "/dir/ghost"), Err(FsError::Io));
    inj.disarm();
    // After healing, the truth — not a cached EIO-era answer.
    assert!(
        k.stat(&p, "/dir/real").is_ok(),
        "EIO must not have cached a negative dentry for a real file"
    );
    assert_eq!(k.stat(&p, "/dir/ghost"), Err(FsError::NoEnt));
}

#[test]
fn sync_reports_and_survives_write_faults() {
    let plan = FaultPlan::new(0x5CBE).permanent(IoOp::Write, 1.0);
    let (k, inj, disk) = faulty_kernel(DcacheConfig::optimized(), plan);
    let p = k.init_process();
    k.mkdir(&p, "/keep", 0o755).unwrap();
    let fd = k
        .open(&p, "/keep/data", OpenFlags::create(), 0o644)
        .unwrap();
    k.write_fd(&p, fd, b"must survive").unwrap();
    k.close(&p, fd).unwrap();

    // Writebacks fail while armed; sync is best-effort and must say so
    // without panicking or dropping the dirty pages.
    inj.arm();
    assert!(disk.sync().is_err(), "sync reports the device failure");
    inj.disarm();
    disk.sync().unwrap();

    // The data survived the broken-device window.
    k.drop_caches();
    let fd = k.open(&p, "/keep/data", OpenFlags::read_only(), 0).unwrap();
    let data = k.read_fd(&p, fd, 32).unwrap();
    assert_eq!(&data[..], b"must survive");
    k.close(&p, fd).unwrap();
}

#[test]
fn latency_spikes_slow_but_never_fail() {
    let plan = FaultPlan::new(0x51CC).latency_spike(IoOp::Read, 1.0, 1_000_000);
    let (k, inj, disk) = faulty_kernel(DcacheConfig::optimized(), plan);
    let p = k.init_process();
    touch(&k, &p, "/f");
    k.drop_caches();
    let ns_before = disk.stats().simulated_io_ns;
    inj.arm();
    assert!(k.stat(&p, "/f").is_ok());
    let ns_after = disk.stats().simulated_io_ns;
    assert!(
        ns_after >= ns_before + 1_000_000,
        "the spike charged simulated time ({ns_before} -> {ns_after})"
    );
    assert_eq!(disk.stats().io_errors, 0);
}

#[test]
fn failed_journal_commit_rolls_back_allocator_counters() {
    // A journaled op whose commit fails must leave no trace: the
    // buffered bitmap writes are discarded with the transaction, so the
    // in-memory free counters must roll back with them — otherwise
    // statfs and NoSpc checks drift from the on-disk bitmaps with every
    // faulted operation.
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 12,
        latency: LatencyModel::free(),
        ..Default::default()
    }));
    let injector = Arc::new(FaultPlan::new(0xA110).permanent(IoOp::Write, 1.0).build());
    disk.attach_fault_injector(injector.clone());
    let fs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 1 << 10,
            ..Default::default()
        },
    )
    .unwrap();
    let r = fs.root_ino();
    // Allocate root's first directory block up front so the doomed
    // create below allocates only an inode.
    fs.create(r, "warmup", 0o644, 0, 0).unwrap();
    let before = fs.statfs().unwrap();

    injector.arm();
    assert_eq!(
        fs.create(r, "doomed", 0o644, 0, 0),
        Err(FsError::Io),
        "journal commit must fail on a broken device"
    );
    injector.disarm();

    let after = fs.statfs().unwrap();
    assert_eq!(after.ffree, before.ffree, "inode counter rolled back");
    assert_eq!(after.bfree, before.bfree, "block counter rolled back");

    // Healed device: the same create succeeds and accounts exactly once.
    fs.create(r, "doomed", 0o644, 0, 0).unwrap();
    assert_eq!(fs.statfs().unwrap().ffree, before.ffree - 1);
}

#[test]
fn failed_checkpoint_header_flush_keeps_durable_commits_recoverable() {
    // The EIO-then-crash path: a checkpoint whose header flush fails
    // must not reclaim log space in memory, or later commits overwrite
    // slots the on-disk header still points recovery at and durable
    // transactions silently vanish at the next power cut. The exact
    // wrap position depends on per-transaction slot counts, so the
    // scenario runs at several post-failure depths — every one must
    // recover every committed operation.
    for posts in 1..=6usize {
        // Tiny device: the journal clamps to 16 log slots, so a
        // handful of transactions wraps the log.
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            capacity_blocks: 512,
            latency: LatencyModel::free(),
            ..Default::default()
        }));
        let fs = MemFs::mkfs(
            disk.clone(),
            MemFsConfig {
                max_inodes: 128,
                ..Default::default()
            },
        )
        .unwrap();
        let r = fs.root_ino();
        fs.create(r, "pre", 0o644, 0, 0).unwrap();
        fs.sync().unwrap(); // durable baseline checkpoint

        // Commit live transactions, then break ONLY the journal header
        // blocks: the checkpoint's full-cache flush succeeds, the
        // header write+flush does not.
        fs.create(r, "mid0", 0o644, 0, 0).unwrap();
        fs.create(r, "mid1", 0o644, 0, 0).unwrap();
        let hdr = fs.geometry().journal_start;
        let injector = Arc::new(
            FaultPlan::new(0xC4EC)
                .rule(
                    FaultRule::new(FaultKind::Permanent, 1.0)
                        .on(IoOp::Write)
                        .blocks(hdr..hdr + 2),
                )
                .build(),
        );
        disk.attach_fault_injector(injector.clone());
        injector.arm();
        assert_eq!(fs.sync(), Err(FsError::Io), "header flush must fail");
        injector.disarm();

        // Healed device: journaled mutations continue and wrap the log.
        for i in 0..posts {
            fs.create(r, &format!("post{i}"), 0o644, 0, 0).unwrap();
        }

        // Power cut with the in-place copies of the post-failure ops
        // still dirty: only the journal can bring them back.
        disk.power_cut();
        drop(fs);
        let rfs = MemFs::mount(disk.clone()).unwrap();
        let report = fsck(&disk).unwrap();
        assert!(
            report.is_clean(),
            "posts={posts}: fsck after EIO-then-crash: {:?}",
            report.errors
        );
        let root = rfs.root_ino();
        for name in ["pre", "mid0", "mid1"]
            .into_iter()
            .map(str::to_owned)
            .chain((0..posts).map(|i| format!("post{i}")))
        {
            assert!(
                rfs.lookup(root, &name).is_ok(),
                "posts={posts}: {name} lost after EIO-then-crash recovery"
            );
        }
    }
}

#[test]
fn sync_report_enumerates_failed_pages_and_retries_losslessly() {
    let plan = FaultPlan::new(0x10B5).permanent(IoOp::Write, 1.0);
    let (k, inj, disk) = faulty_kernel(DcacheConfig::optimized(), plan);
    let p = k.init_process();
    k.mkdir(&p, "/spool", 0o755).unwrap();
    for f in 0..8 {
        let fd = k
            .open(&p, &format!("/spool/m{f}"), OpenFlags::create(), 0o644)
            .unwrap();
        k.write_fd(&p, fd, b"queued mail").unwrap();
        k.close(&p, fd).unwrap();
    }

    // Broken device: sync must say exactly which pages it could not
    // write, with a per-page error, and must keep them dirty.
    inj.arm();
    let first = disk.sync_report();
    assert!(!first.is_clean(), "a fully broken device cannot sync clean");
    assert!(!first.failed.is_empty(), "failed pages are enumerated");
    let mut first_blocks: Vec<u64> = first.failed.iter().map(|(b, _)| *b).collect();
    first_blocks.sort_unstable();
    first_blocks.dedup();
    assert_eq!(
        first_blocks.len(),
        first.failed.len(),
        "each failed page is reported once"
    );

    // A second attempt on the still-broken device sees the same pages
    // again: nothing was dropped, nothing was silently marked clean.
    let second = disk.sync_report();
    let mut second_blocks: Vec<u64> = second.failed.iter().map(|(b, _)| *b).collect();
    second_blocks.sort_unstable();
    assert_eq!(
        first_blocks, second_blocks,
        "failed pages stay dirty for lossless retry"
    );

    // Device heals: the retried sync flushes every page it previously
    // reported and comes back clean.
    inj.disarm();
    let healed = disk.sync_report();
    assert!(healed.is_clean(), "healed device syncs clean");
    assert!(
        healed.flushed >= first_blocks.len() as u64,
        "the kept-dirty pages were flushed on retry ({} < {})",
        healed.flushed,
        first_blocks.len()
    );

    // End to end: nothing was lost across the broken-device window —
    // even a power cut after the clean sync keeps the whole tree.
    drop(k);
    disk.power_cut();
    let rfs = MemFs::mount(disk.clone()).unwrap();
    let root = rfs.root_ino();
    let spool = rfs.lookup(root, "spool").unwrap();
    for f in 0..8 {
        let a = rfs.lookup(spool.ino, &format!("m{f}")).unwrap();
        assert_eq!(a.size, 11, "mail m{f} survived intact");
    }
}
