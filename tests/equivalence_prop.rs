//! Property test: the optimized directory cache is observationally
//! equivalent to the baseline.
//!
//! Random syscall sequences run against two kernels — one with the
//! unmodified component-at-a-time walker, one with every optimization
//! enabled — and every operation must return the same outcome (same
//! errno, same visible metadata, same directory listings). This is the
//! paper's central compatibility claim (§4.4): the fastpath, negative
//! caching, and completeness machinery are pure performance features.

use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Mkdir(String),
    Create(String),
    Write(String, usize),
    Unlink(String),
    Rmdir(String),
    Rename(String, String),
    Stat(String),
    Lstat(String),
    Access(String, u32),
    Chmod(String, u16),
    Symlink(String, String),
    Readlink(String),
    List(String),
    Chdir(String),
    Mkstemp(String),
}

fn component() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("gamma"),
        Just("delta"),
        Just("x"),
        Just("."),
        Just(".."),
    ]
}

fn path() -> impl Strategy<Value = String> {
    (prop::bool::ANY, prop::collection::vec(component(), 1..4)).prop_map(|(abs, comps)| {
        let mut s = if abs { "/".to_string() } else { String::new() };
        s.push_str(&comps.join("/"));
        s
    })
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        path().prop_map(Op::Mkdir),
        path().prop_map(Op::Create),
        (path(), 0usize..5000).prop_map(|(p, n)| Op::Write(p, n)),
        path().prop_map(Op::Unlink),
        path().prop_map(Op::Rmdir),
        (path(), path()).prop_map(|(a, b)| Op::Rename(a, b)),
        path().prop_map(Op::Stat),
        path().prop_map(Op::Lstat),
        (path(), 0u32..8).prop_map(|(p, m)| Op::Access(p, m)),
        (
            path(),
            prop_oneof![Just(0o700u16), Just(0o755), Just(0o000), Just(0o644)]
        )
            .prop_map(|(p, m)| Op::Chmod(p, m)),
        (path(), path()).prop_map(|(t, l)| Op::Symlink(t, l)),
        path().prop_map(Op::Readlink),
        path().prop_map(Op::List),
        path().prop_map(Op::Chdir),
        path().prop_map(Op::Mkstemp),
    ]
}

/// A comparable outcome of one operation.
fn apply(k: &Kernel, p: &Arc<Process>, op: &Op, tag: u64) -> String {
    match op {
        Op::Mkdir(path) => fmt_unit(k.mkdir(p, path, 0o755)),
        Op::Create(path) => match k.open(p, path, OpenFlags::create(), 0o644) {
            Ok(fd) => {
                k.close(p, fd).unwrap();
                "ok".into()
            }
            Err(e) => e.errno_name().into(),
        },
        Op::Write(path, n) => match k.open(p, path, OpenFlags::read_write(), 0) {
            Ok(fd) => {
                let data = vec![0xAB; *n];
                let r = k.write_fd(p, fd, &data);
                k.close(p, fd).unwrap();
                fmt_val(r)
            }
            Err(e) => e.errno_name().into(),
        },
        Op::Unlink(path) => fmt_unit(k.unlink(p, path)),
        Op::Rmdir(path) => fmt_unit(k.rmdir(p, path)),
        Op::Rename(a, b) => fmt_unit(k.rename(p, a, b)),
        Op::Stat(path) => match k.stat(p, path) {
            Ok(a) => format!("ok:{:?}:{:o}:{}:{}", a.ftype, a.mode, a.size, a.nlink),
            Err(e) => e.errno_name().into(),
        },
        Op::Lstat(path) => match k.lstat(p, path) {
            Ok(a) => format!("ok:{:?}:{:o}:{}", a.ftype, a.mode, a.size),
            Err(e) => e.errno_name().into(),
        },
        Op::Access(path, mask) => fmt_unit(k.access(p, path, *mask & 0x7)),
        Op::Chmod(path, mode) => fmt_unit(k.chmod(p, path, *mode)),
        Op::Symlink(t, l) => fmt_unit(k.symlink(p, t, l)),
        Op::Readlink(path) => fmt_val(k.readlink_path(p, path)),
        Op::List(path) => match k.list_dir(p, path) {
            Ok(mut entries) => {
                entries.sort_by(|a, b| a.name.cmp(&b.name));
                let names: Vec<String> = entries
                    .iter()
                    .map(|e| format!("{}:{:?}", e.name, e.ftype))
                    .collect();
                format!("ok:[{}]", names.join(","))
            }
            Err(e) => e.errno_name().into(),
        },
        Op::Chdir(path) => {
            let r = fmt_unit(k.chdir(p, path));
            format!("{r}:{}", k.getcwd(p))
        }
        Op::Mkstemp(path) => match k.mkstemp(p, path, &format!("t{tag}-")) {
            // Names are random per kernel; only success/failure compares.
            Ok((fd, _)) => {
                k.close(p, fd).unwrap();
                "ok".into()
            }
            Err(e) => e.errno_name().into(),
        },
    }
}

fn fmt_unit(r: Result<(), dcache_repro::fs::FsError>) -> String {
    match r {
        Ok(()) => "ok".into(),
        Err(e) => e.errno_name().into(),
    }
}

fn fmt_val<T: std::fmt::Debug>(r: Result<T, dcache_repro::fs::FsError>) -> String {
    match r {
        Ok(v) => format!("ok:{v:?}"),
        Err(e) => e.errno_name().into(),
    }
}

fn run_equivalence(ops: Vec<Op>) {
    let kb = KernelBuilder::new(DcacheConfig::baseline().with_seed(0xAAAA))
        .build()
        .unwrap();
    let ko = KernelBuilder::new(DcacheConfig::optimized().with_seed(0xBBBB))
        .build()
        .unwrap();
    let pb = kb.init_process();
    let po = ko.init_process();
    for (i, op) in ops.iter().enumerate() {
        let a = apply(&kb, &pb, op, i as u64);
        let b = apply(&ko, &po, op, i as u64);
        assert_eq!(
            a,
            b,
            "divergence at op {i} {op:?} (baseline vs optimized)\nhistory: {:?}",
            &ops[..=i]
        );
    }
    // Final full-tree comparison.
    let la = apply(&kb, &pb, &Op::List("/".into()), 0);
    let lb = apply(&ko, &po, &Op::List("/".into()), 0);
    assert_eq!(la, lb, "final root listings diverged");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 2000,
        ..ProptestConfig::default()
    })]

    #[test]
    fn optimized_cache_is_observationally_equivalent(
        ops in prop::collection::vec(op(), 1..60)
    ) {
        run_equivalence(ops);
    }
}

#[test]
fn equivalence_regression_rename_over_cached_subtree() {
    run_equivalence(vec![
        Op::Mkdir("/alpha".into()),
        Op::Mkdir("/alpha/beta".into()),
        Op::Create("/alpha/beta/x".into()),
        Op::Stat("/alpha/beta/x".into()),
        Op::Rename("/alpha".into(), "/gamma".into()),
        Op::Stat("/alpha/beta/x".into()),
        Op::Stat("/gamma/beta/x".into()),
        Op::List("/gamma/beta".into()),
    ]);
}

#[test]
fn equivalence_regression_unlink_recreate_symlink() {
    run_equivalence(vec![
        Op::Mkdir("/delta".into()),
        Op::Create("/delta/x".into()),
        Op::Symlink("/delta/x".into(), "/x".into()),
        Op::Stat("/x".into()),
        Op::Unlink("/delta/x".into()),
        Op::Stat("/x".into()),
        Op::Lstat("/x".into()),
        Op::Mkdir("/delta/x".into()),
        Op::Stat("/x".into()),
    ]);
}

#[test]
fn equivalence_regression_dotdot_and_chdir() {
    run_equivalence(vec![
        Op::Mkdir("/alpha".into()),
        Op::Mkdir("/alpha/beta".into()),
        Op::Chdir("/alpha/beta".into()),
        Op::Create("../x".into()),
        Op::Stat("../x".into()),
        Op::Stat("../../alpha/x".into()),
        Op::Chmod("/alpha".into(), 0o000),
        Op::Stat("x".into()),
        Op::Stat("/alpha/x".into()),
        Op::Chmod("/alpha".into(), 0o755),
        Op::Stat("/alpha/x".into()),
    ]);
}

#[test]
fn equivalence_regression_deep_negative_then_create() {
    run_equivalence(vec![
        Op::Stat("/alpha/beta/gamma".into()),
        Op::Stat("/alpha/beta/gamma".into()),
        Op::Mkdir("/alpha".into()),
        Op::Stat("/alpha/beta/gamma".into()),
        Op::Mkdir("/alpha/beta".into()),
        Op::Create("/alpha/beta/gamma".into()),
        Op::Stat("/alpha/beta/gamma".into()),
        Op::Stat("/alpha/beta/gamma/x".into()),
        Op::Unlink("/alpha/beta/gamma".into()),
        Op::Stat("/alpha/beta/gamma/x".into()),
    ]);
}

/// The ablation configurations must also be observationally equivalent
/// to the baseline — each paper feature is a pure optimization.
fn run_equivalence_against(config: DcacheConfig, ops: Vec<Op>) {
    let kb = KernelBuilder::new(DcacheConfig::baseline().with_seed(0xCCCC))
        .build()
        .unwrap();
    let ko = KernelBuilder::new(config.with_seed(0xDDDD))
        .build()
        .unwrap();
    let pb = kb.init_process();
    let po = ko.init_process();
    for (i, op) in ops.iter().enumerate() {
        let a = apply(&kb, &pb, op, i as u64);
        let b = apply(&ko, &po, op, i as u64);
        assert_eq!(a, b, "divergence at op {i} {op:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 1000,
        ..ProptestConfig::default()
    })]

    #[test]
    fn ablations_are_observationally_equivalent(
        ops in prop::collection::vec(op(), 1..40),
        which in 0usize..5
    ) {
        let config = match which {
            0 => DcacheConfig {
                dir_completeness: false,
                ..DcacheConfig::optimized()
            },
            1 => DcacheConfig {
                deep_negative: false,
                ..DcacheConfig::optimized()
            },
            2 => DcacheConfig {
                neg_on_unlink: false,
                ..DcacheConfig::optimized()
            },
            3 => DcacheConfig {
                fastpath: false,
                ..DcacheConfig::optimized()
            },
            // The locked-reads ablation: same structures, but dentry
            // accessors take the per-field locks and the DLHT shards a
            // reader lock per bucket instead of epoch pinning. Must be
            // observationally identical to everything else.
            _ => DcacheConfig::optimized().with_locked_reads(),
        };
        run_equivalence_against(config, ops);
    }

    /// Tiny caches (constant eviction pressure) stay equivalent too.
    #[test]
    fn capacity_pressure_is_observationally_equivalent(
        ops in prop::collection::vec(op(), 1..40)
    ) {
        run_equivalence_against(
            DcacheConfig::optimized().with_capacity(24),
            ops,
        );
    }

    /// A soft byte budget (auto-shrink on allocation pressure) must be
    /// invisible to every operation outcome.
    #[test]
    fn mem_budget_pressure_is_observationally_equivalent(
        ops in prop::collection::vec(op(), 1..40)
    ) {
        run_equivalence_against(
            DcacheConfig::optimized().with_mem_budget(64 * 1024),
            ops,
        );
    }

    /// Interleaving full memory-pressure shrinks (budget 0: evict every
    /// unpinned dentry, flush every PCC) between operations must be
    /// invisible too — the shrinker may cost performance, never answers.
    #[test]
    fn shrink_interleaving_is_observationally_equivalent(
        ops in prop::collection::vec(op(), 1..40),
        every in 1usize..4
    ) {
        let kb = KernelBuilder::new(DcacheConfig::baseline().with_seed(0xEEEE))
            .build()
            .unwrap();
        let ko = KernelBuilder::new(DcacheConfig::optimized().with_seed(0xFFFF))
            .build()
            .unwrap();
        let pb = kb.init_process();
        let po = ko.init_process();
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&kb, &pb, op, i as u64);
            let b = apply(&ko, &po, op, i as u64);
            assert_eq!(a, b, "divergence at op {i} {op:?} with shrinks every {every}");
            if (i + 1) % every == 0 {
                ko.memory_pressure(0);
            }
        }
    }
}
