//! The hit-rate optimizations of §5: directory completeness, negative
//! dentries (including after unlink/rename), and deep negative chains.

use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn kernel(config: DcacheConfig) -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(config.with_seed(111)).build().unwrap();
    let p = k.init_process();
    (k, p)
}

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

fn fs_lookups(k: &Kernel) -> u64 {
    k.init_namespace().root_mount().sb.fs.stats().snapshot().0
}

#[test]
fn new_directories_answer_misses_without_fs_calls() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/fresh", 0o755).unwrap();
    let before = fs_lookups(&k);
    // Misses in a complete (newly created) directory never reach the fs.
    for i in 0..20 {
        assert_eq!(k.stat(&p, &format!("/fresh/nope{i}")), Err(FsError::NoEnt));
    }
    assert_eq!(
        fs_lookups(&k),
        before,
        "fs was consulted under completeness"
    );
    assert!(k.dcache.stats.complete_neg_avoided.load(Ordering::Relaxed) >= 20);
    // Creating a file keeps the directory complete.
    touch(&k, &p, "/fresh/real");
    let before = fs_lookups(&k);
    assert_eq!(k.stat(&p, "/fresh/other"), Err(FsError::NoEnt));
    assert!(k.stat(&p, "/fresh/real").is_ok());
    assert_eq!(fs_lookups(&k), before);
}

#[test]
fn readdir_completes_preexisting_directories() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/old", 0o755).unwrap();
    for i in 0..30 {
        touch(&k, &p, &format!("/old/f{i:02}"));
    }
    // Simulate a reboot-ish state: drop the dcache so the directory is
    // no longer known-complete.
    k.drop_caches();
    // A partial probe does not certify completeness...
    assert!(k.stat(&p, "/old/f00").is_ok());
    // ...a full readdir pass does.
    let all = k.list_dir(&p, "/old").unwrap();
    assert_eq!(all.len(), 30);
    let before_readdir_fs = k.dcache.stats.readdir_fs.load(Ordering::Relaxed);
    let before_lookups = fs_lookups(&k);
    // Repeat listing: served from the cache.
    assert_eq!(k.list_dir(&p, "/old").unwrap().len(), 30);
    assert_eq!(
        k.dcache.stats.readdir_fs.load(Ordering::Relaxed),
        before_readdir_fs
    );
    // Lookups of the listed entries use the partial dentries, not the fs.
    for i in 0..30 {
        assert!(k.stat(&p, &format!("/old/f{i:02}")).is_ok());
    }
    assert_eq!(
        fs_lookups(&k),
        before_lookups,
        "listed entries still caused fs lookups"
    );
    // Misses are answered by completeness.
    assert_eq!(k.stat(&p, "/old/missing"), Err(FsError::NoEnt));
    assert_eq!(fs_lookups(&k), before_lookups);
}

#[test]
fn interrupted_readdir_does_not_certify_completeness() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/partial", 0o755).unwrap();
    for i in 0..50 {
        touch(&k, &p, &format!("/partial/e{i:02}"));
    }
    k.drop_caches();
    let fd = k.open(&p, "/partial", OpenFlags::directory(), 0).unwrap();
    // Read a bit, then rewind (lseek voids the completeness evidence).
    let first = k.readdir(&p, fd, 10).unwrap();
    assert_eq!(first.len(), 10);
    k.rewinddir(&p, fd).unwrap();
    let mut total = 0;
    loop {
        let b = k.readdir(&p, fd, 16).unwrap();
        if b.is_empty() {
            break;
        }
        total += b.len();
    }
    assert_eq!(total, 50);
    k.close(&p, fd).unwrap();
    // The seeked stream must NOT have set DIR_COMPLETE: a miss consults
    // the file system.
    let before = fs_lookups(&k);
    assert_eq!(k.stat(&p, "/partial/none"), Err(FsError::NoEnt));
    assert!(fs_lookups(&k) > before, "seeked stream wrongly certified");
}

#[test]
fn unlink_and_rename_leave_negative_dentries() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/w", 0o755).unwrap();
    touch(&k, &p, "/w/doomed");
    touch(&k, &p, "/w/moving");
    k.stat(&p, "/w/doomed").unwrap();
    k.unlink(&p, "/w/doomed").unwrap();
    let before = fs_lookups(&k);
    for _ in 0..5 {
        assert_eq!(k.stat(&p, "/w/doomed"), Err(FsError::NoEnt));
    }
    assert_eq!(fs_lookups(&k), before, "unlink left no negative dentry");
    // Rename: the old path answers negatively without fs traffic.
    k.rename(&p, "/w/moving", "/w/moved").unwrap();
    let before = fs_lookups(&k);
    for _ in 0..5 {
        assert_eq!(k.stat(&p, "/w/moving"), Err(FsError::NoEnt));
    }
    assert_eq!(fs_lookups(&k), before, "rename left no negative dentry");
    // The classic editor pattern: recreate over the negative entry.
    touch(&k, &p, "/w/doomed");
    assert!(k.stat(&p, "/w/doomed").is_ok());
}

#[test]
fn baseline_unlink_of_open_file_does_not_cache_negative() {
    let (k, p) = kernel(DcacheConfig::baseline());
    k.mkdir(&p, "/b", 0o755).unwrap();
    touch(&k, &p, "/b/held");
    // Keep the file open (in use) while unlinking: Linux baseline
    // unhashes instead of converting to a negative dentry (§5.2).
    let fd = k.open(&p, "/b/held", OpenFlags::read_only(), 0).unwrap();
    k.unlink(&p, "/b/held").unwrap();
    let before = fs_lookups(&k);
    assert_eq!(k.stat(&p, "/b/held"), Err(FsError::NoEnt));
    assert!(
        fs_lookups(&k) > before,
        "baseline should re-consult the fs for an in-use unlink"
    );
    k.close(&p, fd).unwrap();
}

#[test]
fn deep_negative_chains_cache_multi_component_misses() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/root-dir", 0o755).unwrap();
    // Miss below a missing directory: /root-dir/gone/a/b.
    assert_eq!(k.stat(&p, "/root-dir/gone/a/b"), Err(FsError::NoEnt));
    let before = fs_lookups(&k);
    let fast_neg_before = k.dcache.stats.fast_neg_hits.load(Ordering::Relaxed);
    for _ in 0..5 {
        assert_eq!(k.stat(&p, "/root-dir/gone/a/b"), Err(FsError::NoEnt));
    }
    assert_eq!(fs_lookups(&k), before);
    assert!(
        k.dcache.stats.fast_neg_hits.load(Ordering::Relaxed) > fast_neg_before,
        "deep misses should hit the fastpath"
    );
    // ENOTDIR chains below regular files.
    touch(&k, &p, "/root-dir/file");
    assert_eq!(k.stat(&p, "/root-dir/file/x/y"), Err(FsError::NotDir));
    let before = fs_lookups(&k);
    for _ in 0..5 {
        assert_eq!(k.stat(&p, "/root-dir/file/x/y"), Err(FsError::NotDir));
    }
    assert_eq!(fs_lookups(&k), before);
    // Creating the directory chain dissolves the negatives.
    k.mkdir(&p, "/root-dir/gone", 0o755).unwrap();
    k.mkdir(&p, "/root-dir/gone/a", 0o755).unwrap();
    touch(&k, &p, "/root-dir/gone/a/b");
    assert!(k.stat(&p, "/root-dir/gone/a/b").is_ok());
}

#[test]
fn baseline_has_no_deep_negative_caching() {
    let (k, p) = kernel(DcacheConfig::baseline());
    k.mkdir(&p, "/plain", 0o755).unwrap();
    assert_eq!(k.stat(&p, "/plain/none/x"), Err(FsError::NoEnt));
    let before = fs_lookups(&k);
    // The first component miss IS cached as a plain negative dentry by
    // baseline Linux, so repeats don't hit the fs either — but only one
    // level deep (there is no /plain/none/x entry).
    assert_eq!(k.stat(&p, "/plain/none/x"), Err(FsError::NoEnt));
    assert_eq!(fs_lookups(&k), before);
    assert_eq!(
        k.dcache.stats.neg_deep_created.load(Ordering::Relaxed),
        0,
        "baseline must not fabricate deep negatives"
    );
}

#[test]
fn mkstemp_in_complete_directory_skips_existence_probes() {
    let (k, p) = kernel(DcacheConfig::optimized());
    k.mkdir(&p, "/tmp", 0o777).unwrap();
    for i in 0..50 {
        touch(&k, &p, &format!("/tmp/existing{i}"));
    }
    let before = fs_lookups(&k);
    for _ in 0..10 {
        let (fd, name) = k.mkstemp(&p, "/tmp", "s-").unwrap();
        k.close(&p, fd).unwrap();
        k.unlink(&p, &format!("/tmp/{name}")).unwrap();
    }
    // The existence probes were answered by completeness; only the
    // create/unlink mutations touched the fs (they are not lookups).
    assert_eq!(
        fs_lookups(&k),
        before,
        "mkstemp probes leaked to the file system"
    );
}

#[test]
fn negative_dentries_capped_by_eviction() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(112).with_capacity(100))
        .build()
        .unwrap();
    let p = k.init_process();
    k.mkdir(&p, "/n", 0o755).unwrap();
    for i in 0..1000 {
        let _ = k.stat(&p, &format!("/n/ghost{i}"));
    }
    assert!(
        k.dcache.live() <= 250,
        "negative dentries not bounded (live={})",
        k.dcache.live()
    );
}
