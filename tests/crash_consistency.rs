//! Crash consistency: the always-on mini power-cut campaign plus the
//! journal's durability contrasts (DESIGN.md §11).
//!
//! A seeded metadata workload runs over the journaled memfs while a
//! [`CrashMonitor`] cuts power at ~40 deterministic device-write
//! ordinals (some tearing the in-flight write). Every captured image
//! must remount, pass `fsck`, and present exactly the metadata tree of
//! a committed-operation prefix of the workload. The companion tests
//! pin the two sides of the durability story: with the journal,
//! unsynced metadata survives a cut; without it, the same cut loses the
//! tree — and a remount after recovery starts with a genuinely cold
//! cache.

use dcache_repro::blockdev::{CachedDisk, CrashMonitor, DiskConfig, LatencyModel};
use dcache_repro::fs::{fsck, FileSystem, FileType, MemFs, MemFsConfig, SetAttr};
use dcache_repro::{DcacheConfig, KernelBuilder, OpenFlags};
use std::sync::atomic::Ordering;
use std::sync::Arc;

const CUT_POINTS: usize = 40;
const TEAR_PROB: f64 = 0.3;
const CACHE_PAGES: usize = 256;

fn new_disk() -> Arc<CachedDisk> {
    Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 14,
        cache_pages: CACHE_PAGES,
        latency: LatencyModel::free(),
        ..Default::default()
    }))
}

fn new_fs(disk: Arc<CachedDisk>) -> Arc<MemFs> {
    MemFs::mkfs(
        disk,
        MemFsConfig {
            max_inodes: 1 << 12,
            ..Default::default()
        },
    )
    .unwrap()
}

/// One path-addressed metadata op; resolving by name at apply time
/// keeps the stream replayable on any file system state.
#[derive(Clone, Debug)]
enum Op {
    Mkdir(String),
    Create(usize, String),
    Write(usize, String, usize),
    Unlink(usize, String),
    Rename(usize, String, usize, String),
    Chmod(usize, String, u16),
}

const DIRS: usize = 6;

fn dirname(d: usize) -> String {
    format!("d{d}")
}

/// The deterministic op stream: creates dominate, with churn (writes,
/// unlinks, renames, chmods) mixed in. Some ops fail by design (e.g.
/// unlinking an already-renamed file) — failures commit nothing and
/// replay identically.
fn op_stream(count: usize) -> Vec<Op> {
    let mut ops: Vec<Op> = (0..DIRS).map(|d| Op::Mkdir(dirname(d))).collect();
    for i in 0..count {
        let d = i % DIRS;
        ops.push(match i % 8 {
            0 | 1 | 2 | 6 => Op::Create(d, format!("f{i}")),
            3 => Op::Write(d, format!("f{}", i - 3), (i * 37) % 5000 + 1),
            4 => Op::Unlink((i - 2) % DIRS, format!("f{}", i - 2)),
            5 => Op::Rename(
                (i - 5) % DIRS,
                format!("f{}", i - 5),
                (i + 1) % DIRS,
                format!("r{i}"),
            ),
            _ => Op::Chmod(d, format!("f{}", i - 1), 0o600 + (i % 0o70) as u16),
        });
    }
    ops
}

fn apply(fs: &MemFs, op: &Op) -> bool {
    let root = fs.root_ino();
    let dir = |d: &usize| fs.lookup(root, &dirname(*d)).map(|a| a.ino);
    match op {
        Op::Mkdir(name) => fs.mkdir(root, name, 0o755, 0, 0).is_ok(),
        Op::Create(d, name) => match dir(d) {
            Ok(di) => fs.create(di, name, 0o644, 0, 0).is_ok(),
            Err(_) => false,
        },
        Op::Write(d, name, len) => match dir(d).and_then(|di| fs.lookup(di, name)) {
            Ok(a) => fs.write(a.ino, 0, &vec![0x5Au8; *len]).is_ok(),
            Err(_) => false,
        },
        Op::Unlink(d, name) => match dir(d) {
            Ok(di) => fs.unlink(di, name).is_ok(),
            Err(_) => false,
        },
        Op::Rename(od, on, nd, nn) => match (dir(od), dir(nd)) {
            (Ok(a), Ok(b)) => fs.rename(a, on, b, nn).is_ok(),
            _ => false,
        },
        Op::Chmod(d, name, mode) => match dir(d).and_then(|di| fs.lookup(di, name)) {
            Ok(a) => fs
                .setattr(
                    a.ino,
                    SetAttr {
                        mode: Some(*mode),
                        ..Default::default()
                    },
                )
                .is_ok(),
            Err(_) => false,
        },
    }
}

/// Comparable metadata lines for the whole tree (type, mode, nlink,
/// size, link target — times excluded, content excluded: data blocks
/// are write-back, the journal guarantees the metadata tree).
fn tree_sig(fs: &MemFs, ino: u64, path: &str, out: &mut Vec<String>) {
    let a = fs.getattr(ino).expect("reachable inode readable");
    let link = if a.ftype == FileType::Symlink {
        fs.readlink(ino).unwrap_or_default()
    } else {
        String::new()
    };
    out.push(format!(
        "{path} {:?} {:o} {} {} {link}",
        a.ftype, a.mode, a.nlink, a.size
    ));
    if !a.ftype.is_dir() {
        return;
    }
    let mut entries = Vec::new();
    let mut cursor = 0u64;
    while let Some(next) = fs.readdir(ino, cursor, 64, &mut entries).unwrap() {
        cursor = next;
    }
    entries.sort_by(|x, y| x.name.cmp(&y.name));
    for e in entries {
        tree_sig(fs, e.ino, &format!("{path}/{}", e.name), out);
    }
}

fn full_sig(fs: &MemFs) -> Vec<String> {
    let mut out = Vec::new();
    tree_sig(fs, fs.root_ino(), "", &mut out);
    out
}

/// Runs the op stream; returns `(boundaries, writes_during)` where a
/// boundary is `(committed_seq, ops_applied)` after each success.
fn run_ops(
    fs: &MemFs,
    ops: &[Op],
    monitor: Option<&Arc<CrashMonitor>>,
) -> (Vec<(u64, usize)>, u64) {
    fs.sync().unwrap();
    let writes0 = fs.disk().stats().device_writes;
    if let Some(m) = monitor {
        m.arm();
    }
    let mut boundaries = vec![(fs.journal_seq().unwrap(), 0usize)];
    for (i, op) in ops.iter().enumerate() {
        if apply(fs, op) {
            let seq = fs.journal_seq().unwrap();
            match boundaries.last_mut() {
                Some(last) if last.0 == seq => last.1 = i + 1,
                _ => boundaries.push((seq, i + 1)),
            }
        }
    }
    if let Some(m) = monitor {
        m.disarm();
    }
    (boundaries, fs.disk().stats().device_writes - writes0)
}

#[test]
fn seeded_crash_campaign_recovers_to_committed_prefix() {
    let seed = 0xCAFE_C817u64;
    let ops = op_stream(320);

    // Pass 1: learn the device-write count so cuts span the whole run.
    let fs1 = new_fs(new_disk());
    let (_, writes) = run_ops(&fs1, &ops, None);
    assert!(writes > 200, "workload too quiet to cut: {writes} writes");

    // Pass 2: identical run under scheduled power cuts.
    let monitor = Arc::new(CrashMonitor::sample(seed, writes, CUT_POINTS, TEAR_PROB));
    let disk = new_disk();
    disk.attach_crash_monitor(monitor.clone());
    let fs2 = new_fs(disk);
    let (boundaries, _) = run_ops(&fs2, &ops, Some(&monitor));
    let images = monitor.take_images();
    assert_eq!(images.len(), CUT_POINTS, "every scheduled cut must fire");
    assert!(
        images.iter().any(|i| i.torn_block.is_some()),
        "the campaign must include torn in-flight writes"
    );

    // Shadow replays committed prefixes in ascending order.
    let shadow = new_fs(new_disk());
    shadow.sync().unwrap();
    let mut applied = 0usize;
    let mut targets = Vec::new();
    let mut replayed_total = 0u64;
    for img in &images {
        let cut = img.cut_at_write;
        let rdisk = Arc::new(CachedDisk::from_image(
            img,
            CACHE_PAGES,
            LatencyModel::free(),
        ));
        let rfs = MemFs::mount(rdisk.clone()).unwrap_or_else(|e| {
            panic!("cut@{cut}: remount failed: {e:?}");
        });
        replayed_total += rfs.replayed_txns();
        let report = fsck(&rdisk).unwrap();
        assert!(
            report.is_clean(),
            "cut@{cut}: fsck errors: {:?}",
            report.errors
        );
        let rseq = rfs.recovered_seq();
        let idx = boundaries
            .binary_search_by_key(&rseq, |b| b.0)
            .unwrap_or_else(|_| {
                panic!("cut@{cut}: recovered seq {rseq} is not a committed-op boundary")
            });
        targets.push((boundaries[idx].1, cut, rfs));
    }
    targets.sort_by_key(|(prefix, _, _)| *prefix);
    for (prefix, cut, rfs) in targets {
        while applied < prefix {
            apply(&shadow, &ops[applied]);
            applied += 1;
        }
        assert_eq!(
            full_sig(&rfs),
            full_sig(&shadow),
            "cut@{cut}: recovered tree differs from the {prefix}-op shadow prefix"
        );
    }
    assert!(
        replayed_total > 0,
        "no cut ever exercised journal replay — campaign too gentle"
    );
}

#[test]
fn journaled_kernel_tree_survives_power_cut_unsynced() {
    let disk = new_disk();
    let fs = new_fs(disk.clone());
    {
        let kernel = KernelBuilder::new(DcacheConfig::optimized())
            .root_fs(fs.clone() as Arc<dyn FileSystem>)
            .build()
            .unwrap();
        let p = kernel.init_process();
        kernel.mkdir(&p, "/etc", 0o755).unwrap();
        kernel.mkdir(&p, "/etc/rc.d", 0o755).unwrap();
        let fd = kernel
            .open(&p, "/etc/rc.d/init", OpenFlags::create(), 0o640)
            .unwrap();
        kernel.close(&p, fd).unwrap();
        // No sync, no checkpoint: everything rides on the journal.
    }
    let dropped = disk.power_cut();
    assert!(dropped > 0, "the cut must actually lose dirty pages");

    let rfs = MemFs::mount(disk.clone()).unwrap();
    assert!(rfs.replayed_txns() > 0, "recovery had txns to replay");
    assert!(fsck(&disk).unwrap().is_clean());

    // Remount into a fresh kernel: the walk must rebuild from a cold
    // dentry cache and reach the device for real.
    let kernel = KernelBuilder::new(DcacheConfig::optimized())
        .root_fs(rfs as Arc<dyn FileSystem>)
        .build()
        .unwrap();
    let p = kernel.init_process();
    let reads0 = disk.stats().device_reads;
    let attr = kernel.stat(&p, "/etc/rc.d/init").unwrap();
    assert_eq!(attr.mode, 0o640);
    assert!(
        kernel.dcache.stats.miss_fs.load(Ordering::Relaxed) > 0,
        "cold rebuild must miss to the file system"
    );
    assert!(
        disk.stats().device_reads >= reads0,
        "device read counter must not go backwards"
    );
}

#[test]
fn unjournaled_kernel_tree_is_lost_on_power_cut() {
    let disk = new_disk();
    let fs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 1 << 12,
            journal: false,
            ..Default::default()
        },
    )
    .unwrap();
    let kernel = KernelBuilder::new(DcacheConfig::optimized())
        .root_fs(fs as Arc<dyn FileSystem>)
        .build()
        .unwrap();
    let p = kernel.init_process();
    kernel.mkdir(&p, "/gone", 0o755).unwrap();
    disk.power_cut();

    let rfs = MemFs::mount_with(disk, false).unwrap();
    assert_eq!(
        rfs.lookup(rfs.root_ino(), "gone").unwrap_err(),
        dcache_repro::fs::FsError::NoEnt,
        "write-back metadata must not survive an unsynced power cut"
    );
}
