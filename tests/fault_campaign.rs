//! The seeded 1000-fault campaign (ISSUE acceptance bar).
//!
//! A faulty kernel — optimized config on a device running the standard
//! recoverable campaign (`FaultPlan::campaign`) — executes a seeded
//! stream of metadata operations in lockstep with a clean kernel, with
//! periodic cache drops so walks keep reaching the faulty device. The
//! campaign must complete with:
//!
//!   * zero panics (the test finishing is the assertion),
//!   * zero divergence from the clean kernel (no stale lookups),
//!   * zero `EIO`s leaking past the page cache's retry budget
//!     (every campaign fault is recoverable within the backoff budget),
//!   * exactly 1000 faults injected (the `limit()` cap is precise).

use dcache_repro::blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dcache_repro::fault::{FaultInjector, FaultPlan};
use dcache_repro::fs::{MemFs, MemFsConfig};
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

const CAMPAIGN_FAULTS: u64 = 1000;

/// Deterministic op-stream generator (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn faulty_kernel(plan: FaultPlan) -> (Arc<Kernel>, Arc<FaultInjector>, Arc<CachedDisk>) {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 17,
        latency: LatencyModel::free(),
        ..Default::default()
    }));
    let injector = Arc::new(plan.build());
    disk.attach_fault_injector(injector.clone());
    let memfs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 1 << 17,
            ..Default::default()
        },
    )
    .unwrap();
    let kernel = KernelBuilder::new(DcacheConfig::optimized().with_seed(0xCA_4041))
        .root_fs(memfs)
        .build()
        .unwrap();
    (kernel, injector, disk)
}

/// One comparable outcome string per operation.
fn outcome<T: std::fmt::Debug>(r: Result<T, dcache_repro::fs::FsError>, show: bool) -> String {
    match r {
        Ok(v) => {
            if show {
                format!("ok:{v:?}")
            } else {
                "ok".into()
            }
        }
        Err(e) => e.errno_name().into(),
    }
}

fn stat_sig(k: &Kernel, p: &Arc<Process>, path: &str) -> String {
    match k.stat(p, path) {
        Ok(a) => format!("ok:{:?}:{:o}:{}", a.ftype, a.mode, a.nlink),
        Err(e) => e.errno_name().into(),
    }
}

#[test]
fn seeded_thousand_fault_campaign_stays_equivalent() {
    let (kf, inj, disk) = faulty_kernel(FaultPlan::campaign(0xC0_FFEE, CAMPAIGN_FAULTS));
    let kc = KernelBuilder::new(DcacheConfig::optimized().with_seed(0xCA_4041))
        .build()
        .unwrap();
    let pf = kf.init_process();
    let pc = kc.init_process();

    // Static directory skeleton the op stream scribbles inside.
    for k in [&kf, &kc] {
        let p = k.init_process();
        for d in 0..8 {
            k.mkdir(&p, &format!("/d{d}"), 0o755).unwrap();
        }
    }

    let mut rng = Rng(0x5EED_CA4A);
    let mut next_file = 0u64; // names ever created (may since be unlinked)
    let mut ops = 0u64;
    let mut rounds = 0u32;
    inj.arm();
    // Run until the campaign cap is reached; the round bound is a
    // safety net so a starved injector fails loudly instead of hanging.
    while inj.stats().total() < CAMPAIGN_FAULTS {
        rounds += 1;
        assert!(
            rounds <= 2000,
            "injector starved: only {} of {CAMPAIGN_FAULTS} faults after {ops} ops",
            inj.stats().total()
        );
        for step in 0..256u32 {
            // Cold walks are what reach the device; re-chill often.
            if step % 16 == 0 {
                kf.drop_caches();
            }
            let d = rng.below(8);
            let f = rng.below(next_file.max(1));
            let (a, b) = match rng.below(10) {
                // Create a fresh file (writes + later writeback faults).
                0..=2 => {
                    let path = format!("/d{d}/f{next_file}");
                    next_file += 1;
                    let touch = |k: &Kernel, p: &Arc<Process>| match k.open(
                        p,
                        &path,
                        OpenFlags::create(),
                        0o644,
                    ) {
                        Ok(fd) => outcome(k.close(p, fd), false),
                        Err(e) => e.errno_name().into(),
                    };
                    (touch(&kc, &pc), touch(&kf, &pf))
                }
                // Stat a (maybe-live, maybe-unlinked) file.
                3..=5 => {
                    let path = format!("/d{}/f{f}", rng.below(8));
                    (stat_sig(&kc, &pc, &path), stat_sig(&kf, &pf, &path))
                }
                // Stat a never-created name (negative caching).
                6 => {
                    let path = format!("/d{d}/ghost{}", rng.below(64));
                    (stat_sig(&kc, &pc, &path), stat_sig(&kf, &pf, &path))
                }
                // Unlink whatever the dice picked.
                7 => {
                    let path = format!("/d{}/f{f}", rng.below(8));
                    (
                        outcome(kc.unlink(&pc, &path), false),
                        outcome(kf.unlink(&pf, &path), false),
                    )
                }
                // Rename across directories.
                8 => {
                    let from = format!("/d{}/f{f}", rng.below(8));
                    let to = format!("/d{d}/f{next_file}");
                    next_file += 1;
                    (
                        outcome(kc.rename(&pc, &from, &to), false),
                        outcome(kf.rename(&pf, &from, &to), false),
                    )
                }
                // Directory listing (completeness caching).
                _ => {
                    let path = format!("/d{d}");
                    let list = |k: &Kernel, p: &Arc<Process>| match k.list_dir(p, &path) {
                        Ok(v) => format!("ok:{}", v.len()),
                        Err(e) => e.errno_name().into(),
                    };
                    (list(&kc, &pc), list(&kf, &pf))
                }
            };
            ops += 1;
            assert_eq!(a, b, "divergence at op {ops} (round {rounds})");
        }
    }
    inj.disarm();

    // Exactly the cap — limit() is precise, not approximate.
    let fs = inj.stats();
    assert_eq!(fs.total(), CAMPAIGN_FAULTS, "campaign cap must be exact");
    assert!(fs.transient > 0, "transients actually exercised");

    // Every transient resolved inside the retry budget: nothing leaked.
    let ds = disk.stats();
    assert!(ds.io_retries > 0, "retries absorbed the campaign");
    assert_eq!(ds.io_errors, 0, "no EIO may leak past the retry budget");

    // Post-recovery: the faulty kernel still matches clean answers on a
    // fresh cold sweep.
    kf.drop_caches();
    for d in 0..8 {
        let path = format!("/d{d}");
        assert_eq!(
            kc.list_dir(&pc, &path).unwrap().len(),
            kf.list_dir(&pf, &path).unwrap().len(),
            "post-recovery listing diverged in {path}"
        );
    }
    for f in 0..next_file {
        let path = format!("/d{}/f{f}", f % 8);
        assert_eq!(
            stat_sig(&kc, &pc, &path),
            stat_sig(&kf, &pf, &path),
            "post-recovery stat diverged on {path}"
        );
    }
}
