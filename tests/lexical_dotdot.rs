//! Plan 9 lexical dot-dot semantics (§4.2): `a/../b` simplifies to `b`
//! *before* resolution, so symlinks and permissions on `a` no longer
//! matter — deliberately different semantics from POSIX, compared in
//! Figure 6.

use dcache_repro::cred::Cred;
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

fn lexical() -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(DcacheConfig::optimized_lexical().with_seed(55))
        .build()
        .unwrap();
    let p = k.init_process();
    (k, p)
}

fn posix() -> (Arc<Kernel>, Arc<Process>) {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(55))
        .build()
        .unwrap();
    let p = k.init_process();
    (k, p)
}

fn setup(k: &Kernel, p: &Arc<Process>) {
    k.mkdir(p, "/x", 0o755).unwrap();
    k.mkdir(p, "/x/y", 0o755).unwrap();
    let fd = k
        .open(p, "/x/y/target", OpenFlags::create(), 0o644)
        .unwrap();
    k.close(p, fd).unwrap();
    let fd = k.open(p, "/x/sibling", OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
    // L is a symlink to /x/y; "/x/L/../sibling" differs between modes:
    // POSIX resolves L first (→ /x/y/../sibling → /x/sibling is reached
    // via /x/y's parent /x), lexical pops "L" (→ /x/sibling directly).
    k.symlink(p, "/x/y", "/x/L").unwrap();
}

#[test]
fn simple_dotdot_agrees_between_modes() {
    for (k, p) in [lexical(), posix()] {
        setup(&k, &p);
        assert!(k.stat(&p, "/x/y/../sibling").is_ok());
        assert!(k.stat(&p, "/x/y/../../x/y/target").is_ok());
        assert_eq!(k.stat(&p, "/x/y/../nope"), Err(FsError::NoEnt));
    }
}

#[test]
fn symlink_dotdot_differs_where_the_paper_says() {
    // Here the two modes coincide in *result* (both reach /x/sibling)
    // but lexical never touches the link. Distinguish with a link whose
    // target's parent differs from the lexical parent.
    let (k, p) = posix();
    setup(&k, &p);
    k.mkdir(&p, "/elsewhere", 0o755).unwrap();
    let fd = k
        .open(&p, "/elsewhere/only-here", OpenFlags::create(), 0o644)
        .unwrap();
    k.close(&p, fd).unwrap();
    k.symlink(&p, "/elsewhere", "/x/jump").unwrap();
    // POSIX: /x/jump/.. = parent of /elsewhere = / → /x exists.
    assert!(k.stat(&p, "/x/jump/../x").is_ok());
    // POSIX: /x/jump/../elsewhere/only-here exists.
    assert!(k.stat(&p, "/x/jump/../elsewhere/only-here").is_ok());

    let (k, p) = lexical();
    setup(&k, &p);
    k.mkdir(&p, "/elsewhere", 0o755).unwrap();
    k.symlink(&p, "/elsewhere", "/x/jump").unwrap();
    // Lexical: /x/jump/../x = /x/x — does not exist.
    assert_eq!(k.stat(&p, "/x/jump/../x"), Err(FsError::NoEnt));
    // Lexical: /x/jump/../sibling = /x/sibling — exists, link untouched.
    assert!(k.stat(&p, "/x/jump/../sibling").is_ok());
}

#[test]
fn lexical_mode_skips_intermediate_permission_checks() {
    // POSIX requires search permission on the directory the ".." names;
    // lexical never visits it.
    let (k, root) = posix();
    setup(&k, &root);
    k.mkdir(&root, "/x/locked", 0o700).unwrap();
    let alice = k.spawn_with_cred(&root, Cred::user(1000, 1000));
    assert_eq!(
        k.stat(&alice, "/x/locked/../sibling"),
        Err(FsError::Access),
        "POSIX mode must check search permission on the popped dir"
    );

    let (k, root) = lexical();
    setup(&k, &root);
    k.mkdir(&root, "/x/locked", 0o700).unwrap();
    let alice = k.spawn_with_cred(&root, Cred::user(1000, 1000));
    assert!(
        k.stat(&alice, "/x/locked/../sibling").is_ok(),
        "lexical mode pops the component without visiting it"
    );
}

#[test]
fn leading_dotdots_climb_in_both_modes() {
    for (k, p) in [lexical(), posix()] {
        setup(&k, &p);
        k.chdir(&p, "/x/y").unwrap();
        assert!(k.stat(&p, "../sibling").is_ok());
        assert!(k.stat(&p, "../../x/y/target").is_ok());
        // Above the root stays at the root.
        assert!(k.stat(&p, "../../../../..").is_ok());
    }
}

#[test]
fn lexical_fastpath_hits_on_dotdot_paths() {
    let (k, p) = lexical();
    setup(&k, &p);
    // Warm.
    k.stat(&p, "/x/y/../sibling").unwrap();
    let before = k
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..5 {
        k.stat(&p, "/x/y/../sibling").unwrap();
    }
    let after = k
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        after >= before + 5,
        "lexical dot-dot paths should ride the fastpath"
    );
}
