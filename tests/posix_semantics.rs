//! POSIX semantics not covered by the per-crate tests: permission
//! matrices, sticky bits, credential changes, path-based MAC, and the
//! `*at()` family — run against both cache configurations.

use dcache_repro::cred::{CredBuilder, MacRule, PathMac, SecurityStack, MAY_READ, MAY_WRITE};
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

fn both(test: impl Fn(Arc<Kernel>, Arc<Process>)) {
    for config in [
        DcacheConfig::baseline(),
        DcacheConfig::optimized(),
        DcacheConfig::optimized().with_locked_reads(),
    ] {
        let k = KernelBuilder::new(config.with_seed(77)).build().unwrap();
        test(k.clone(), k.init_process());
    }
}

#[test]
fn group_permissions_and_supplementary_groups() {
    both(|k, root| {
        k.mkdir(&root, "/shared", 0o750).unwrap();
        k.chown(&root, "/shared", Some(0), Some(500)).unwrap();
        let fd = k
            .open(&root, "/shared/doc", OpenFlags::create(), 0o640)
            .unwrap();
        k.close(&root, fd).unwrap();
        k.chown(&root, "/shared/doc", Some(0), Some(500)).unwrap();

        let member = k.spawn_with_cred(
            &root,
            CredBuilder::new(1000, 100).with_groups(&[500]).build(),
        );
        let outsider = k.spawn_with_cred(&root, CredBuilder::new(1001, 101).build());
        assert!(k.stat(&member, "/shared/doc").is_ok());
        assert!(k
            .open(&member, "/shared/doc", OpenFlags::read_only(), 0)
            .is_ok());
        assert_eq!(k.stat(&outsider, "/shared/doc"), Err(FsError::Access));
        // Member may read but not write (g=r).
        assert_eq!(
            k.open(&member, "/shared/doc", OpenFlags::read_write(), 0)
                .unwrap_err(),
            FsError::Access
        );
    });
}

#[test]
fn sticky_bit_restricts_deletion() {
    both(|k, root| {
        k.mkdir(&root, "/tmp", 0o777).unwrap();
        k.chmod(&root, "/tmp", 0o1777).unwrap();
        let alice = k.spawn_with_cred(&root, dcache_repro::cred::Cred::user(1000, 1000));
        let bob = k.spawn_with_cred(&root, dcache_repro::cred::Cred::user(1001, 1001));
        let fd = k
            .open(&alice, "/tmp/alice.dat", OpenFlags::create(), 0o666)
            .unwrap();
        k.close(&alice, fd).unwrap();
        // Bob cannot remove or rename Alice's file in a sticky dir.
        assert_eq!(k.unlink(&bob, "/tmp/alice.dat"), Err(FsError::Perm));
        assert_eq!(
            k.rename(&bob, "/tmp/alice.dat", "/tmp/stolen"),
            Err(FsError::Perm)
        );
        // Alice and root can.
        assert!(k.rename(&alice, "/tmp/alice.dat", "/tmp/mine").is_ok());
        assert!(k.unlink(&root, "/tmp/mine").is_ok());
    });
}

#[test]
fn setuid_commit_creates_or_reuses_cred() {
    both(|k, root| {
        k.mkdir(&root, "/work", 0o755).unwrap();
        let p = k.spawn(&root);
        let before = p.cred().id();
        // A no-op "setuid" (same ids) must reuse the cred — and with it
        // the prefix check cache (§4.1).
        let same = k.setuid(&p, 0, 0);
        assert_eq!(same.id(), before);
        // A real change allocates a new cred.
        let changed = k.setuid(&p, 1000, 1000);
        assert_ne!(changed.id(), before);
        assert_eq!(p.cred().uid, 1000);
        // Dropped privileges are enforced.
        k.chmod(&root, "/work", 0o700).unwrap();
        assert_eq!(k.stat(&p, "/work/x"), Err(FsError::Access));
    });
}

#[test]
fn pathmac_lsm_denies_by_path_prefix() {
    for config in [
        DcacheConfig::baseline(),
        DcacheConfig::optimized(),
        DcacheConfig::optimized().with_locked_reads(),
    ] {
        let mut stack = SecurityStack::dac_only();
        stack.push(Arc::new(PathMac::new(vec![
            MacRule {
                uid: Some(1000),
                path_prefix: "/etc/secret".into(),
                deny_mask: MAY_READ | MAY_WRITE,
            },
            MacRule {
                uid: None,
                path_prefix: "/vault".into(),
                deny_mask: MAY_WRITE,
            },
        ])));
        let k = KernelBuilder::new(config.with_seed(78))
            .security(stack)
            .build()
            .unwrap();
        let root = k.init_process();
        k.mkdir(&root, "/etc", 0o755).unwrap();
        k.mkdir(&root, "/etc/secret", 0o755).unwrap();
        let fd = k
            .open(&root, "/etc/secret/key", OpenFlags::create(), 0o666)
            .unwrap();
        k.close(&root, fd).unwrap();
        k.mkdir(&root, "/vault", 0o777).unwrap();

        let alice = k.spawn_with_cred(&root, dcache_repro::cred::Cred::user(1000, 1000));
        // MAC denies the read despite permissive mode bits; repeats (the
        // memoized-PCC path) stay denied.
        for _ in 0..3 {
            assert_eq!(
                k.open(&alice, "/etc/secret/key", OpenFlags::read_only(), 0)
                    .unwrap_err(),
                FsError::Access
            );
        }
        // stat (no read intent) still passes DAC+MAC search rules.
        assert!(k.stat(&alice, "/etc/secret/key").is_ok());
        // The wildcard rule binds root too (mandatory, not discretionary).
        assert_eq!(
            k.open(&root, "/vault/w", OpenFlags::create(), 0o644)
                .unwrap_err(),
            FsError::Access
        );
    }
}

#[test]
fn at_family_with_moving_dirfd() {
    both(|k, root| {
        k.mkdir(&root, "/a", 0o755).unwrap();
        k.mkdir(&root, "/a/sub", 0o755).unwrap();
        let fd = k
            .open(&root, "/a/sub/f", OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&root, fd).unwrap();
        let dirfd = k.open(&root, "/a/sub", OpenFlags::directory(), 0).unwrap();
        assert!(k.fstatat(&root, dirfd, "f", false).is_ok());
        // Renaming the directory does not invalidate the handle: lookups
        // through the dirfd keep working on the moved directory.
        k.rename(&root, "/a/sub", "/a/moved").unwrap();
        assert!(k.fstatat(&root, dirfd, "f", false).is_ok());
        assert_eq!(k.stat(&root, "/a/sub/f"), Err(FsError::NoEnt));
        assert!(k.stat(&root, "/a/moved/f").is_ok());
        // unlinkat through the handle.
        k.unlinkat(&root, dirfd, "f", false).unwrap();
        assert_eq!(k.fstatat(&root, dirfd, "f", false), Err(FsError::NoEnt));
        k.close(&root, dirfd).unwrap();
    });
}

#[test]
fn open_flags_matrix() {
    both(|k, root| {
        let fd = k.open(&root, "/f", OpenFlags::create(), 0o644).unwrap();
        k.write_fd(&root, fd, b"0123456789").unwrap();
        k.close(&root, fd).unwrap();
        // O_EXCL on existing.
        assert_eq!(
            k.open(&root, "/f", OpenFlags::create_excl(), 0o644)
                .unwrap_err(),
            FsError::Exist
        );
        // O_TRUNC empties.
        let fd = k.open(&root, "/f", OpenFlags::create(), 0o644).unwrap();
        k.close(&root, fd).unwrap();
        assert_eq!(k.stat(&root, "/f").unwrap().size, 0);
        // O_APPEND writes at the end.
        let mut fl = OpenFlags::read_write();
        fl.append = true;
        let fd = k.open(&root, "/f", fl, 0).unwrap();
        k.write_fd(&root, fd, b"aa").unwrap();
        k.write_fd(&root, fd, b"bb").unwrap();
        k.close(&root, fd).unwrap();
        assert_eq!(k.stat(&root, "/f").unwrap().size, 4);
        // O_DIRECTORY on a file.
        assert_eq!(
            k.open(&root, "/f", OpenFlags::directory(), 0).unwrap_err(),
            FsError::NotDir
        );
        // Write to a directory.
        k.mkdir(&root, "/d", 0o755).unwrap();
        assert_eq!(
            k.open(&root, "/d", OpenFlags::read_write(), 0).unwrap_err(),
            FsError::IsDir
        );
        // O_NOFOLLOW on a symlink.
        k.symlink(&root, "/f", "/lnk").unwrap();
        let mut nf = OpenFlags::read_only();
        nf.nofollow = true;
        assert_eq!(k.open(&root, "/lnk", nf, 0).unwrap_err(), FsError::Loop);
    });
}

#[test]
fn io_through_handles() {
    both(|k, root| {
        let fd = k.open(&root, "/io", OpenFlags::create(), 0o644).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(k.write_fd(&root, fd, &payload).unwrap(), payload.len());
        k.close(&root, fd).unwrap();
        let fd = k.open(&root, "/io", OpenFlags::read_only(), 0).unwrap();
        let first = k.read_fd(&root, fd, 4096).unwrap();
        assert_eq!(&first[..], &payload[..4096]);
        let second = k.read_fd(&root, fd, 4096).unwrap();
        assert_eq!(&second[..], &payload[4096..8192]);
        let mid = k.pread(&root, fd, 100, 64).unwrap();
        assert_eq!(&mid[..], &payload[100..164]);
        k.lseek(&root, fd, 9990).unwrap();
        assert_eq!(k.read_fd(&root, fd, 100).unwrap().len(), 10);
        // Reads on a write-only handle are EBADF.
        k.close(&root, fd).unwrap();
        let wo = OpenFlags {
            write: true,
            ..Default::default()
        };
        let fd = k.open(&root, "/io", wo, 0).unwrap();
        assert_eq!(k.read_fd(&root, fd, 1), Err(FsError::BadF));
        k.close(&root, fd).unwrap();
        // fstat on a closed fd.
        assert_eq!(k.fstat(&root, fd), Err(FsError::BadF));
    });
}

#[test]
fn unlinked_open_file_semantics() {
    both(|k, root| {
        let fd = k.open(&root, "/ghost", OpenFlags::create(), 0o644).unwrap();
        k.write_fd(&root, fd, b"boo").unwrap();
        k.unlink(&root, "/ghost").unwrap();
        // The path is gone...
        assert_eq!(k.stat(&root, "/ghost"), Err(FsError::NoEnt));
        // ...but the handle still answers fstat from the cached inode.
        assert_eq!(k.fstat(&root, fd).unwrap().size, 3);
        k.close(&root, fd).unwrap();
    });
}

#[test]
fn chown_rules() {
    both(|k, root| {
        let fd = k.open(&root, "/owned", OpenFlags::create(), 0o644).unwrap();
        k.close(&root, fd).unwrap();
        k.chown(&root, "/owned", Some(1000), Some(100)).unwrap();
        let owner = k.spawn_with_cred(
            &root,
            CredBuilder::new(1000, 100).with_groups(&[200]).build(),
        );
        // Owner may change the group to one they belong to...
        assert!(k.chown(&owner, "/owned", None, Some(200)).is_ok());
        // ...but not give the file away or join foreign groups.
        assert_eq!(
            k.chown(&owner, "/owned", Some(1001), None),
            Err(FsError::Perm)
        );
        assert_eq!(
            k.chown(&owner, "/owned", None, Some(999)),
            Err(FsError::Perm)
        );
        // chmod is owner-or-root.
        assert!(k.chmod(&owner, "/owned", 0o600).is_ok());
        let other = k.spawn_with_cred(&root, dcache_repro::cred::Cred::user(1001, 101));
        assert_eq!(k.chmod(&other, "/owned", 0o777), Err(FsError::Perm));
    });
}
