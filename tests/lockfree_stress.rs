//! Randomized stress: lock-free readers racing structural writers.
//!
//! Eight-plus threads hammer a shared subtree — optimistic `stat`s and
//! `readdir`s race renames and chmods — and afterwards every invariant
//! the lock-free read path promises is checked:
//!
//! - **no lost updates**: every file the writers left behind is present
//!   under its final name with its final mode;
//! - **no stale positives**: a path that never existed is never
//!   resolved, a stable path never fails, and an observed mode is
//!   always one of the values some writer actually published;
//! - **retry accounting reconciles**: `stats.read_retries` equals the
//!   recorder's `ReadRetry` event count, `slow_retries` equals
//!   `SeqRetry`, and `epoch_pins` equals `EpochPin` — the counters and
//!   the trace are bumped at the same sites, so divergence means an
//!   unaccounted retry path.

use dc_vfs::{EventKind, ObsConfig};
use dcache_repro::fs::FsError;
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const MODES: [u16; 2] = [0o644, 0o600];

fn touch(k: &Kernel, p: &Arc<Process>, path: &str) {
    let fd = k.open(p, path, OpenFlags::create(), 0o644).unwrap();
    k.close(p, fd).unwrap();
}

/// A tiny deterministic PRNG so the schedule differs per thread without
/// needing an RNG dependency.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[test]
fn lockfree_readers_race_structural_writers() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(99))
        .observability(ObsConfig {
            ring_capacity: 1024,
        })
        .build()
        .unwrap();
    let p = k.init_process();

    // Layout: /s/stable/* never changes; /s/flip is renamed back and
    // forth; /s/perm/* files have their modes flipped.
    k.mkdir(&p, "/s", 0o755).unwrap();
    k.mkdir(&p, "/s/stable", 0o755).unwrap();
    k.mkdir(&p, "/s/flip", 0o755).unwrap();
    k.mkdir(&p, "/s/perm", 0o755).unwrap();
    for i in 0..8 {
        touch(&k, &p, &format!("/s/stable/f{i}"));
        touch(&k, &p, &format!("/s/flip/f{i}"));
        touch(&k, &p, &format!("/s/perm/f{i}"));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let stale = Arc::new(AtomicU64::new(0));
    // Completed renames, for quiescent-window judging: a reader only
    // treats a miss/hit pair as anomalous when no flip completed in
    // between (the same protocol as tests/coherence.rs).
    let flips = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writer 1: renames /s/flip <-> /s/gone.
        {
            let k = k.clone();
            let p = k.spawn(&p);
            let stop = stop.clone();
            let flips = flips.clone();
            s.spawn(move || {
                let mut to_gone = true;
                while !stop.load(Ordering::Relaxed) {
                    let (from, to) = if to_gone {
                        ("/s/flip", "/s/gone")
                    } else {
                        ("/s/gone", "/s/flip")
                    };
                    k.rename(&p, from, to).unwrap();
                    flips.fetch_add(1, Ordering::SeqCst);
                    to_gone = !to_gone;
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                if !to_gone {
                    k.rename(&p, "/s/gone", "/s/flip").unwrap();
                    flips.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        // Writer 2: flips modes on the /s/perm files.
        {
            let k = k.clone();
            let p = k.spawn(&p);
            let stop = stop.clone();
            s.spawn(move || {
                let mut r = 0xfeed_beefu64;
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let i = next(&mut r) % 8;
                    let mode = MODES[round % 2];
                    k.chmod(&p, &format!("/s/perm/f{i}"), mode).unwrap();
                    round += 1;
                }
                // Leave a deterministic final state.
                for i in 0..8 {
                    k.chmod(&p, &format!("/s/perm/f{i}"), MODES[0]).unwrap();
                }
            });
        }
        // 8 readers: stats + readdirs, judging only race-free windows.
        for t in 0..8u64 {
            let k = k.clone();
            let p = k.spawn(&p);
            let stop = stop.clone();
            let stale = stale.clone();
            let flips = flips.clone();
            s.spawn(move || {
                let mut r = 0x9e37_79b9 ^ (t + 1);
                while !stop.load(Ordering::Relaxed) {
                    match next(&mut r) % 4 {
                        0 => {
                            // Stable paths must always resolve.
                            let i = next(&mut r) % 8;
                            if k.stat(&p, &format!("/s/stable/f{i}")).is_err() {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            // Mode reads must be a published value.
                            let i = next(&mut r) % 8;
                            let a = k.stat(&p, &format!("/s/perm/f{i}")).unwrap();
                            if !MODES.contains(&a.mode) {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            // Renamed dir: in a quiescent window exactly
                            // one of the two names resolves; and a name
                            // that never existed never resolves.
                            let before = flips.load(Ordering::SeqCst);
                            let at_flip = k.stat(&p, "/s/flip/f0").is_ok();
                            let at_gone = k.stat(&p, "/s/gone/f0").is_ok();
                            let after = flips.load(Ordering::SeqCst);
                            if before == after && at_flip == at_gone {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                            if k.stat(&p, "/s/never/f0").is_ok() {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            // Readdir of the stable dir is always the
                            // full, well-formed listing.
                            let fd = k.open(&p, "/s/stable", OpenFlags::directory(), 0).unwrap();
                            let names = k.readdir(&p, fd, 64).unwrap();
                            k.close(&p, fd).unwrap();
                            let files = names.iter().filter(|e| e.name.starts_with('f')).count();
                            if files != 8 {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        stale.load(Ordering::Relaxed),
        0,
        "stale or lost results observed under race"
    );
    assert!(
        flips.load(Ordering::SeqCst) > 0,
        "renamer never completed a flip; the race is vacuous"
    );

    // No lost updates: the writers' final state is fully visible.
    for i in 0..8 {
        k.stat(&p, &format!("/s/stable/f{i}")).unwrap();
        let a = k.stat(&p, &format!("/s/perm/f{i}")).unwrap();
        assert_eq!(a.mode, MODES[0], "final chmod lost on /s/perm/f{i}");
        k.stat(&p, &format!("/s/flip/f{i}")).unwrap();
    }
    assert!(matches!(
        k.stat(&p, "/s/gone/f0"),
        Err(FsError::NoEnt | FsError::NotDir)
    ));

    // Retry accounting reconciles with the trace-event counters.
    let obs = k.obs().obs().expect("recorder is enabled");
    let st = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let stats = &k.dcache.stats;
    assert_eq!(
        obs.event_count(EventKind::ReadRetry),
        st(&stats.read_retries),
        "ReadRetry events diverge from stats.read_retries"
    );
    assert_eq!(
        obs.event_count(EventKind::SeqRetry),
        st(&stats.slow_retries),
        "SeqRetry events diverge from stats.slow_retries"
    );
    assert_eq!(
        obs.event_count(EventKind::EpochPin),
        st(&stats.epoch_pins),
        "EpochPin events diverge from stats.epoch_pins"
    );
}
