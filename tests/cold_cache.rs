//! Cold-cache behavior: drop_caches, device-latency accounting, and
//! correctness of refills (the Table 2 machinery).

use dcache_repro::blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dcache_repro::fs::{FileSystem, MemFs, MemFsConfig};
use dcache_repro::{DcacheConfig, Kernel, KernelBuilder, OpenFlags, Process};
use std::sync::Arc;

fn kernel_with_disk(config: DcacheConfig) -> (Arc<Kernel>, Arc<Process>, Arc<CachedDisk>) {
    let disk = Arc::new(CachedDisk::new(DiskConfig {
        capacity_blocks: 1 << 16,
        latency: LatencyModel::new(1000, 1000, false), // virtual accounting only
        ..Default::default()
    }));
    let fs = MemFs::mkfs(
        disk.clone(),
        MemFsConfig {
            max_inodes: 1 << 14,
            ..Default::default()
        },
    )
    .unwrap();
    let k = KernelBuilder::new(config.with_seed(131))
        .root_fs(fs as Arc<dyn FileSystem>)
        .build()
        .unwrap();
    let p = k.init_process();
    (k, p, disk)
}

#[test]
fn drop_caches_forces_device_reads_and_correct_refill() {
    for config in [DcacheConfig::baseline(), DcacheConfig::optimized()] {
        let (k, p, disk) = kernel_with_disk(config);
        k.mkdir(&p, "/data", 0o755).unwrap();
        for i in 0..40 {
            let fd = k
                .open(&p, &format!("/data/f{i:02}"), OpenFlags::create(), 0o644)
                .unwrap();
            k.write_fd(&p, fd, format!("payload {i}").as_bytes())
                .unwrap();
            k.close(&p, fd).unwrap();
        }
        // Warm pass: no device reads needed afterwards.
        for i in 0..40 {
            k.stat(&p, &format!("/data/f{i:02}")).unwrap();
        }
        disk.reset_stats();
        for i in 0..40 {
            k.stat(&p, &format!("/data/f{i:02}")).unwrap();
        }
        assert_eq!(
            disk.stats().device_reads,
            0,
            "warm stats should not touch the device"
        );
        // Cold: everything must be refetched, and stay correct.
        k.drop_caches();
        disk.reset_stats();
        for i in 0..40 {
            let a = k.stat(&p, &format!("/data/f{i:02}")).unwrap();
            assert_eq!(a.size, format!("payload {i}").len() as u64);
        }
        let s = disk.stats();
        assert!(s.device_reads > 0, "cold pass never reached the device");
        assert!(s.simulated_io_ns > 0, "latency accounting missing");
        // Contents survive the round trip.
        let fd = k.open(&p, "/data/f00", OpenFlags::read_only(), 0).unwrap();
        assert_eq!(&k.read_fd(&p, fd, 64).unwrap()[..], b"payload 0");
        k.close(&p, fd).unwrap();
    }
}

#[test]
fn cold_cache_is_slower_than_warm_in_accounted_io() {
    let (k, p, disk) = kernel_with_disk(DcacheConfig::optimized());
    k.mkdir(&p, "/t", 0o755).unwrap();
    for i in 0..20 {
        let fd = k
            .open(&p, &format!("/t/x{i}"), OpenFlags::create(), 0o644)
            .unwrap();
        k.close(&p, fd).unwrap();
    }
    // Warm accounted I/O for a scan.
    let scan = |k: &Kernel, p: &Arc<Process>| {
        for i in 0..20 {
            k.stat(p, &format!("/t/x{i}")).unwrap();
        }
    };
    scan(&k, &p);
    disk.reset_stats();
    scan(&k, &p);
    let warm_ns = disk.stats().simulated_io_ns;
    k.drop_caches();
    disk.reset_stats();
    scan(&k, &p);
    let cold_ns = disk.stats().simulated_io_ns;
    assert!(
        cold_ns > warm_ns,
        "cold scan ({cold_ns} ns) should out-cost warm scan ({warm_ns} ns)"
    );
}

#[test]
fn remount_after_sync_preserves_everything() {
    let (k, p, disk) = kernel_with_disk(DcacheConfig::optimized());
    k.mkdir(&p, "/persist", 0o750).unwrap();
    k.mkdir(&p, "/persist/deep", 0o755).unwrap();
    let fd = k
        .open(&p, "/persist/deep/file", OpenFlags::create(), 0o640)
        .unwrap();
    k.write_fd(&p, fd, b"durable bytes").unwrap();
    k.close(&p, fd).unwrap();
    k.symlink(&p, "/persist/deep/file", "/persist/link")
        .unwrap();
    // Flush everything and build a brand-new kernel over the same disk.
    k.init_namespace().root_mount().sb.fs.sync().unwrap();
    disk.drop_caches();
    let fs2 = MemFs::mount(disk).unwrap();
    let k2 = KernelBuilder::new(DcacheConfig::optimized().with_seed(132))
        .root_fs(fs2 as Arc<dyn FileSystem>)
        .build()
        .unwrap();
    let p2 = k2.init_process();
    assert_eq!(k2.stat(&p2, "/persist").unwrap().mode, 0o750);
    assert_eq!(k2.stat(&p2, "/persist/deep/file").unwrap().size, 13);
    assert_eq!(k2.stat(&p2, "/persist/link").unwrap().size, 13);
    assert_eq!(
        k2.readlink_path(&p2, "/persist/link").unwrap(),
        "/persist/deep/file"
    );
    let fd = k2
        .open(&p2, "/persist/deep/file", OpenFlags::read_only(), 0)
        .unwrap();
    assert_eq!(&k2.read_fd(&p2, fd, 64).unwrap()[..], b"durable bytes");
    k2.close(&p2, fd).unwrap();
}
