//! Acceptance: a warm fastpath `stat` is genuinely lock-free.
//!
//! The vendored `parking_lot` shim counts every mutex/rwlock
//! acquisition process-wide. After warming the fastpath, a burst of
//! `stat`s over cached paths must not acquire a single lock — the DLHT
//! probe, dentry snapshot reads, PCC check, mount-hint validation, and
//! inode attribute read all run on epoch-protected or seqlock-validated
//! structures.
//!
//! This file deliberately holds exactly one `#[test]`: the acquisition
//! counter is global, so a sibling test running in parallel inside this
//! binary would pollute the measurement window.

use dcache_repro::{DcacheConfig, KernelBuilder};
use std::sync::atomic::Ordering;

#[test]
fn warm_fastpath_stat_acquires_zero_locks() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(7))
        .build()
        .unwrap();
    let p = k.init_process();
    k.mkdir(&p, "/a", 0o755).unwrap();
    k.mkdir(&p, "/a/b", 0o755).unwrap();
    let fd = k
        .open(&p, "/a/b/f", dcache_repro::OpenFlags::create(), 0o644)
        .unwrap();
    k.close(&p, fd).unwrap();

    // Warm every cache level: the first stat takes the slowpath and
    // publishes DLHT + PCC entries; the second must already hit.
    for path in ["/a", "/a/b", "/a/b/f"] {
        k.stat(&p, path).unwrap();
        k.stat(&p, path).unwrap();
    }
    let hits_before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    k.stat(&p, "/a/b/f").unwrap();
    assert!(
        k.dcache.stats.fast_hits.load(Ordering::Relaxed) > hits_before,
        "warm stat did not take the fastpath; the lock measurement below \
         would be vacuous"
    );

    const N: u64 = 1000;
    let hits_before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    let locks_before = parking_lot::lock_acquisitions();
    for _ in 0..N {
        k.stat(&p, "/a/b/f").unwrap();
        k.stat(&p, "/a/b").unwrap();
    }
    let locks_after = parking_lot::lock_acquisitions();
    let hits_after = k.dcache.stats.fast_hits.load(Ordering::Relaxed);

    assert_eq!(
        hits_after - hits_before,
        2 * N,
        "every stat in the window must be a fastpath hit"
    );
    assert_eq!(
        locks_after - locks_before,
        0,
        "warm fastpath stat must not acquire any parking_lot lock"
    );
}
