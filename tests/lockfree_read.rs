//! Acceptance: a warm fastpath `stat` is genuinely lock-free **and
//! allocation-free**.
//!
//! The vendored `parking_lot` shim counts every mutex/rwlock
//! acquisition process-wide, and the counting [`GlobalAlloc`] below
//! counts every heap allocation. After warming the fastpath, a burst of
//! `stat`s over cached paths must not acquire a single lock *or* call
//! the allocator once — the DLHT probe, dentry snapshot reads, PCC
//! check, mount-hint validation, and inode attribute read all run on
//! epoch-protected or seqlock-validated structures, and the path parse
//! + dot-dot scratch live in inline storage (DESIGN.md §13).
//!
//! This binary runs **without** the libtest harness (`harness = false`
//! in Cargo.toml): both counters are process-global, and libtest's own
//! worker threads and completion channels allocate mid-window, which
//! would make the zero-allocation assertion flaky. `main` runs the one
//! check directly on the main thread with nothing else in the process.

use dcache_repro::{DcacheConfig, KernelBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations (not frees — the assertion below is about
/// *acquiring* memory on the warm path).
struct CountingAlloc;

static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn main() {
    warm_fastpath_stat_acquires_zero_locks();
    println!("lockfree_read: ok (zero locks, zero allocations on warm stat)");
}

fn warm_fastpath_stat_acquires_zero_locks() {
    let k = KernelBuilder::new(DcacheConfig::optimized().with_seed(7))
        .build()
        .unwrap();
    let p = k.init_process();
    k.mkdir(&p, "/a", 0o755).unwrap();
    k.mkdir(&p, "/a/b", 0o755).unwrap();
    let fd = k
        .open(&p, "/a/b/f", dcache_repro::OpenFlags::create(), 0o644)
        .unwrap();
    k.close(&p, fd).unwrap();

    // Warm every cache level: the first stat takes the slowpath and
    // publishes DLHT + PCC entries; the second must already hit.
    for path in ["/a", "/a/b", "/a/b/f"] {
        k.stat(&p, path).unwrap();
        k.stat(&p, path).unwrap();
    }
    // Drive the epoch collector through several full collect cycles
    // (collection amortizes into `pin()` every ~128 pins): any one-time
    // lazy state the collector touches — e.g. the `dst` feature's
    // fault-injection knob slot, pulled in by workspace feature
    // unification — must initialize here, not inside the window.
    for _ in 0..512 {
        k.stat(&p, "/a").unwrap();
    }
    let hits_before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    k.stat(&p, "/a/b/f").unwrap();
    assert!(
        k.dcache.stats.fast_hits.load(Ordering::Relaxed) > hits_before,
        "warm stat did not take the fastpath; the lock measurement below \
         would be vacuous"
    );

    const N: u64 = 1000;
    let hits_before = k.dcache.stats.fast_hits.load(Ordering::Relaxed);
    let locks_before = parking_lot::lock_acquisitions();
    let allocs_before = HEAP_ALLOCS.load(Ordering::Relaxed);
    for _ in 0..N {
        k.stat(&p, "/a/b/f").unwrap();
        k.stat(&p, "/a/b").unwrap();
    }
    let allocs_after = HEAP_ALLOCS.load(Ordering::Relaxed);
    let locks_after = parking_lot::lock_acquisitions();
    let hits_after = k.dcache.stats.fast_hits.load(Ordering::Relaxed);

    assert_eq!(
        hits_after - hits_before,
        2 * N,
        "every stat in the window must be a fastpath hit"
    );
    assert_eq!(
        locks_after - locks_before,
        0,
        "warm fastpath stat must not acquire any parking_lot lock"
    );
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "warm fastpath stat must not allocate from the heap"
    );
}
