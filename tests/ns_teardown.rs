//! Acceptance for §14 namespace teardown: destroying a tenant namespace
//! while readers race through it must return **every** dentry, DLHT
//! chain, and PCC line once the epoch collector drains — and the
//! teardown itself must cost O(tenant), measured here as a constant
//! number of lock acquisitions regardless of how many entries the
//! tenant's DLHT holds.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml):
//! the lock-acquisition counter in the vendored `parking_lot` shim is
//! process-global, so the constant-lock-cost window must not overlap
//! the racing-reader scenario's threads.

use dcache_repro::vfs::Cred;
use dcache_repro::{DcacheConfig, KernelBuilder, OpenFlags};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const READERS: usize = 8;
const TENANT_FILES: usize = 48;

fn main() {
    teardown_under_racing_readers_reclaims_everything();
    teardown_lock_cost_is_constant();
    println!("ns_teardown: ok (leak-free under {READERS} racing readers, O(1) teardown locks)");
}

fn tenancy_config() -> DcacheConfig {
    DcacheConfig::optimized()
        .with_tenant_buckets(1 << 7)
        .with_pcc_max_resident(64)
}

/// Epoch-drain loop: retired garbage frees a collection cycle or two
/// after the last guard drops, so evict + flush until the numbers stop
/// moving.
fn drain(dcache: &dcache_repro::dcache::Dcache) {
    for _ in 0..4 {
        dcache.drop_unused();
        dcache.flush_all_pccs();
        crossbeam_epoch::pin().flush();
        crossbeam_epoch::pin().flush();
    }
}

fn teardown_under_racing_readers_reclaims_everything() {
    let k = KernelBuilder::new(tenancy_config()).build().unwrap();
    let init = k.init_process();

    // Pin the baseline: only init-namespace state exists.
    k.mkdir(&init, "/tenants", 0o755).unwrap();
    k.stat(&init, "/tenants").unwrap();
    drain(&k.dcache);
    let base_bytes = k.dcache.reclaimable_bytes();
    let base_tables = k.dcache.dlht_count();
    let base_dentries = k.dcache.live();
    let base_pccs = k.dcache.resident_pccs();

    // One tenant: its own namespace, tree, and credentials.
    let tenant = k.spawn(&init);
    let ns = k.unshare_ns(&tenant).unwrap();
    let ns_id = ns.id;
    k.mkdir(&tenant, "/tenants/t0", 0o755).unwrap();
    let files: Vec<String> = (0..TENANT_FILES)
        .map(|j| {
            let p = format!("/tenants/t0/f{j}");
            let fd = k.open(&tenant, &p, OpenFlags::create(), 0o644).unwrap();
            k.close(&tenant, fd).unwrap();
            p
        })
        .collect();
    let cred = Cred::user(4000, 400);
    k.chown(&tenant, "/tenants/t0", Some(cred.uid), Some(400))
        .unwrap();
    tenant.set_cred(cred);
    for f in &files {
        k.stat(&tenant, f).unwrap();
    }
    assert_eq!(k.dcache.dlht_count(), base_tables + 1);
    let (pccs, pcc_bytes) = k.dcache.pcc_stats_for_ns(ns.id);
    assert!(pccs > 0 && pcc_bytes > 0, "tenant walks must attach a PCC");

    // 8 readers hammer the tenant tree through the tenant's namespace
    // while the main thread tears that namespace down underneath them.
    // Reads must keep succeeding: the retired DLHT serves in-flight
    // walks until its last holder drops, and the dentry forest (shared
    // superblock) outlives the namespace.
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..READERS)
        .map(|r| {
            let k = k.clone();
            let proc = k.spawn(&tenant);
            let files = files.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = r;
                let mut ok = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    k.stat(&proc, &files[i % files.len()]).unwrap();
                    i += 1;
                    ok += 1;
                }
                ok
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(20));
    let report = k.destroy_namespace(ns_id).expect("namespace is live");
    assert!(
        report.dlht_entries > 0,
        "teardown must retire the tenant table"
    );
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(reads > 0, "readers never ran");
    assert!(
        k.destroy_namespace(ns_id).is_none(),
        "second teardown is a no-op"
    );

    // Release every handle the test still holds, delete the tenant tree
    // from the (shared) forest, and drain the collector.
    drop(tenant);
    drop(ns);
    for f in &files {
        k.unlink(&init, f).unwrap();
    }
    k.rmdir(&init, "/tenants/t0").unwrap();
    drain(&k.dcache);

    // Everything the tenant allocated came back.
    assert_eq!(k.dcache.dlht_count(), base_tables, "tenant DLHT leaked");
    let ns_fp: Vec<_> = k
        .dcache
        .ns_footprints()
        .into_iter()
        .filter(|(id, _)| *id == ns_id)
        .collect();
    assert!(ns_fp.is_empty(), "retired namespace still registered");
    assert_eq!(
        k.dcache.pcc_stats_for_ns(ns_id),
        (0, 0),
        "PCC lines leaked past teardown"
    );
    assert!(
        k.dcache.resident_pccs() <= base_pccs,
        "fleet-wide PCC count grew: {} > {}",
        k.dcache.resident_pccs(),
        base_pccs
    );
    assert!(
        k.dcache.live() <= base_dentries,
        "dentries leaked past teardown + unlink: {} > {}",
        k.dcache.live(),
        base_dentries
    );
    assert!(
        k.dcache.reclaimable_bytes() <= base_bytes,
        "footprint leaked: {} > baseline {}",
        k.dcache.reclaimable_bytes(),
        base_bytes
    );
}

/// Teardown cost must not scale with the tenant's cached state: the
/// namespace-map removal, PCC detach scan, and DLHT retire each take a
/// bounded number of locks, and no per-entry unlinking happens (entries
/// die wholesale with the table).
fn teardown_lock_cost_is_constant() {
    let mut costs = Vec::new();
    for files in [32usize, 256] {
        let k = KernelBuilder::new(tenancy_config()).build().unwrap();
        let init = k.init_process();
        k.mkdir(&init, "/t", 0o755).unwrap();
        let tenant = k.spawn(&init);
        let ns = k.unshare_ns(&tenant).unwrap();
        for j in 0..files {
            let p = format!("/t/f{j}");
            let fd = k.open(&tenant, &p, OpenFlags::create(), 0o644).unwrap();
            k.close(&tenant, fd).unwrap();
            k.stat(&tenant, &p).unwrap();
        }

        let before = parking_lot::lock_acquisitions();
        let report = k.destroy_namespace(ns.id).unwrap();
        let cost = parking_lot::lock_acquisitions() - before;
        assert!(report.dlht_entries as usize >= files, "table was not warm");
        costs.push((files, report.dlht_entries, cost));
    }
    let small = costs[0].2;
    let large = costs[1].2;
    assert!(
        large <= small + 8,
        "teardown locks scale with entries: {costs:?}"
    );
    assert!(
        small <= 32,
        "teardown takes more than a constant handful of locks: {costs:?}"
    );
}
