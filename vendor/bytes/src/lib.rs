//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! an immutable, cheaply clonable byte buffer. Cloning shares the
//! underlying allocation (`Arc<[u8]>`), matching the real crate's
//! zero-copy clone semantics for the operations used here.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]).as_ref(), &[9]);
    }
}
