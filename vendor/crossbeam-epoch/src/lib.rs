//! Offline stand-in for the `crossbeam-epoch` crate (vendored; no
//! crates.io access in this workspace).
//!
//! Implements the subset of the crossbeam-epoch API the workspace uses,
//! backed by a genuine three-epoch reclamation scheme:
//!
//! - A global epoch counter advances only when every currently *pinned*
//!   participant has observed the current value.
//! - Deferred destructions are tagged with the global epoch **at defer
//!   time** and executed once the global epoch has advanced at least two
//!   steps past the tag — by then no reader that could still hold the
//!   pointer remains pinned.
//! - `pin()` publishes the participant's epoch with a `SeqCst` store and
//!   fence, then re-reads the global epoch and republishes until they
//!   agree, so a pinned reader is never attributed a stale epoch.
//!
//! Internals deliberately use `std::sync::Mutex` (not the workspace's
//! instrumented `parking_lot` shim) so epoch maintenance never shows up
//! in lock-acquisition accounting used by the zero-lock fastpath tests.
//!
//! Single-file implementation; unsupported crossbeam features (tagged
//! pointers, custom collectors, `defer` closures) are omitted.
//!
//! With the `dst` feature this crate becomes *model-checkable*: atomics
//! and internal locks route through the `dst` sync facade (every epoch
//! operation is a scheduling point inside a model execution), the
//! collector's global state lives in a per-execution slot instead of a
//! process-wide static (each explored schedule starts from a pristine
//! epoch), and every epoch-managed allocation is registered with the
//! scheduler's tracked-allocation table, so a read of reclaimed memory
//! is reported as a clean use-after-free *before* the load executes.
//! Outside a model execution the facade passes through to std, so the
//! feature does not perturb ordinary tests that link it.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::ptr;
use std::sync::Arc;

#[cfg(feature = "dst")]
use dst::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
#[cfg(not(feature = "dst"))]
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};

#[cfg(feature = "dst")]
use dst::sync::Mutex;
#[cfg(not(feature = "dst"))]
use std::sync::Mutex;

// -- tracked-allocation hooks (no-ops without the dst feature) --------------

#[inline]
fn track_alloc<T>(ptr: *const T) {
    #[cfg(feature = "dst")]
    dst::alloc::track_alloc(ptr as *const ());
    #[cfg(not(feature = "dst"))]
    let _ = ptr;
}

#[inline]
fn track_free<T>(ptr: *const T) {
    #[cfg(feature = "dst")]
    dst::alloc::track_free(ptr as *const ());
    #[cfg(not(feature = "dst"))]
    let _ = ptr;
}

#[inline]
fn check_deref<T>(ptr: *const T) {
    #[cfg(feature = "dst")]
    dst::alloc::check_deref(ptr as *const ());
    #[cfg(not(feature = "dst"))]
    let _ = ptr;
}

/// How many defers between automatic advance/collect attempts.
const COLLECT_EVERY: usize = 64;
/// How many pins between automatic advance/collect attempts.
const PIN_COLLECT_EVERY: usize = 128;

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

/// One deferred destruction: a type-erased pointer plus its destructor.
#[derive(Clone, Copy)]
struct Deferred {
    ptr: *mut (),
    call: unsafe fn(*mut ()),
}

// The pointees are heap allocations whose owners have relinquished them;
// executing the destructor from any thread is the whole point of EBR.
unsafe impl Send for Deferred {}

impl Deferred {
    unsafe fn execute(self) {
        (self.call)(self.ptr);
    }
}

/// A registered thread. `active == 0` means unpinned; otherwise the value
/// is `(observed_epoch << 1) | 1`.
struct Slot {
    active: AtomicUsize,
}

struct Global {
    epoch: AtomicUsize,
    registry: Mutex<Vec<Arc<Slot>>>,
    garbage: Mutex<Vec<(usize, Deferred)>>,
    deferred: AtomicUsize,
}

fn new_global() -> Global {
    Global {
        epoch: AtomicUsize::new(0),
        registry: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
        deferred: AtomicUsize::new(0),
    }
}

/// The collector state: one per process normally, one per model
/// execution under the `dst` feature (so each explored schedule starts
/// from epoch 0 with an empty registry — the isolation that makes a
/// schedule a pure function of its seed).
#[cfg(feature = "dst")]
fn global() -> Arc<Global> {
    dst::exec_slot(new_global)
}

#[cfg(not(feature = "dst"))]
fn global() -> &'static Global {
    static GLOBAL: std::sync::OnceLock<Global> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(new_global)
}

impl Drop for Global {
    fn drop(&mut self) {
        // A per-execution collector dies with its execution; run the
        // destructions still parked in the garbage list so model runs
        // don't leak (the last reference drops after every virtual
        // thread finished, so nothing can still hold the pointers).
        let garbage = std::mem::take(self.garbage.get_mut().unwrap_or_else(|e| e.into_inner()));
        for (_, d) in garbage {
            unsafe { d.execute() };
        }
    }
}

impl Global {
    /// Advances the global epoch if every pinned participant has observed
    /// the current value.
    fn try_advance(&self) {
        let e = self.epoch.load(Ordering::SeqCst);
        fence(Ordering::SeqCst);
        {
            let reg = self.registry.lock().unwrap();
            for slot in reg.iter() {
                let a = slot.active.load(Ordering::SeqCst);
                if a & 1 == 1 && (a >> 1) != e {
                    return; // someone is still pinned in an older epoch
                }
            }
        }
        // A lost race just means another thread advanced for us.
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Executes every deferred destruction tagged at least two epochs ago
    /// (the "slack"; configurable under `dst` to inject reclamation bugs).
    ///
    /// Drains in fixed-size stack batches: collection is amortized into
    /// `pin()` and therefore runs on *reader* threads, whose hot path
    /// must stay allocation-free (`tests/lockfree_read.rs` counts every
    /// heap allocation during a warm-stat window).
    fn collect(&self) {
        const BATCH: usize = 16;
        let slack = collect_slack();
        let ge = self.epoch.load(Ordering::SeqCst);
        loop {
            let mut batch: [Option<Deferred>; BATCH] = [None; BATCH];
            let mut n = 0;
            {
                let mut g = self.garbage.lock().unwrap();
                let mut i = 0;
                while i < g.len() && n < BATCH {
                    if g[i].0 + slack <= ge {
                        batch[n] = Some(g.swap_remove(i).1);
                        n += 1;
                    } else {
                        i += 1;
                    }
                }
            }
            // Destructors run outside the garbage lock: a destructor may
            // itself defer (e.g. dropping a structure that owns Atomics).
            for d in batch.iter().take(n) {
                unsafe { d.expect("filled up to n").execute() };
            }
            if n < BATCH {
                return;
            }
        }
    }

    fn defer(&self, d: Deferred) {
        let tag = self.epoch.load(Ordering::SeqCst);
        self.garbage.lock().unwrap().push((tag, d));
        let n = self.deferred.fetch_add(1, Ordering::Relaxed) + 1;
        if n % COLLECT_EVERY == 0 {
            self.try_advance();
            self.collect();
        }
    }
}

#[cfg(not(feature = "dst"))]
fn collect_slack() -> usize {
    2
}

#[cfg(feature = "dst")]
fn collect_slack() -> usize {
    use std::sync::atomic::Ordering as StdOrdering;
    dst_testing::knobs().slack.load(StdOrdering::SeqCst)
}

/// Fault-injection knobs for model tests (only with the `dst` feature).
///
/// The model checker validates itself by *breaking* the collector and
/// asserting the epoch-reclamation invariant check catches it with a
/// replayable seed. The knob state is per-execution (see
/// [`dst::exec_slot`]), so an injected fault never leaks into other
/// schedules.
#[cfg(feature = "dst")]
pub mod dst_testing {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    pub(crate) struct Knobs {
        /// Epoch distance a deferred destruction must age before it runs.
        /// 2 is correct three-epoch EBR; 0 frees garbage immediately,
        /// simulating a collector that ignores pinned readers.
        pub(crate) slack: AtomicUsize,
    }

    pub(crate) fn knobs() -> Arc<Knobs> {
        dst::exec_slot(|| Knobs {
            slack: AtomicUsize::new(2),
        })
    }

    /// Overrides the reclamation slack for the current model execution.
    pub fn set_collect_slack(n: usize) {
        use std::sync::atomic::Ordering;
        knobs().slack.store(n, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Thread-local participant
// ---------------------------------------------------------------------------

struct Local {
    slot: Arc<Slot>,
    nesting: Cell<usize>,
    pins: Cell<usize>,
    /// The collector this participant registered with; deregistration
    /// must target the same one even if the calling context changed by
    /// drop time (model executions swap the collector per schedule).
    #[cfg(feature = "dst")]
    home: Arc<Global>,
}

impl Local {
    fn new() -> Local {
        let slot = Arc::new(Slot {
            active: AtomicUsize::new(0),
        });
        let g = global();
        g.registry.lock().unwrap().push(slot.clone());
        Local {
            slot,
            nesting: Cell::new(0),
            pins: Cell::new(0),
            #[cfg(feature = "dst")]
            home: g,
        }
    }

    #[cfg(feature = "dst")]
    fn home(&self) -> &Global {
        &self.home
    }

    #[cfg(not(feature = "dst"))]
    fn home(&self) -> &'static Global {
        global()
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.slot.active.store(0, Ordering::SeqCst);
        let mut reg = self.home().registry.lock().unwrap();
        reg.retain(|s| !Arc::ptr_eq(s, &self.slot));
    }
}

#[cfg(not(feature = "dst"))]
mod tls {
    use super::Local;

    thread_local! {
        static LOCAL: Local = Local::new();
    }

    pub(super) fn with_local<R>(f: impl FnOnce(&Local) -> R) -> R {
        LOCAL.with(f)
    }

    /// `Ok` variant of [`with_local`] that tolerates TLS teardown.
    pub(super) fn try_with_local(f: impl FnOnce(&Local)) {
        let _ = LOCAL.try_with(f);
    }
}

#[cfg(feature = "dst")]
mod tls {
    use super::Local;
    use std::cell::RefCell;

    // Keyed by execution id: a thread that participates in several model
    // executions over its lifetime (the explorer's driver thread runs one
    // per iteration) must register a fresh participant with each
    // execution's collector, or its pins would be invisible to the new
    // collector's advancement scan. Id 0 is the non-execution fallback.
    thread_local! {
        static LOCAL: RefCell<Option<(u64, Local)>> = const { RefCell::new(None) };
    }

    fn key() -> u64 {
        dst::execution_id()
    }

    /// Drops a stale in-execution participant once its execution is
    /// over. Registered as an end-of-execution hook and therefore run in
    /// passthrough mode: dropping it lazily on the next execution's
    /// first pin instead would add that execution a schedule point count
    /// that depends on scheduler history, breaking exact trace replay.
    fn purge_stale_local() {
        let _ = LOCAL.try_with(|cell| {
            if let Ok(mut slot) = cell.try_borrow_mut() {
                if matches!(&*slot, Some((eid, _)) if *eid != key()) {
                    *slot = None;
                }
            }
        });
    }

    pub(super) fn with_local<R>(f: impl FnOnce(&Local) -> R) -> R {
        LOCAL.with(|cell| {
            let id = key();
            let mut slot = cell.borrow_mut();
            if !matches!(&*slot, Some((eid, _)) if *eid == id) {
                if id != 0 {
                    dst::register_execution_end_hook(purge_stale_local);
                }
                *slot = Some((id, Local::new()));
            }
            f(&slot.as_ref().unwrap().1)
        })
    }

    pub(super) fn try_with_local(f: impl FnOnce(&Local)) {
        let _ = LOCAL.try_with(|cell| {
            if let Ok(slot) = cell.try_borrow() {
                // Only the participant of the *current* execution may be
                // touched; unpinning a stale one would corrupt a collector
                // this thread no longer belongs to.
                if let Some((eid, local)) = &*slot {
                    if *eid == key() {
                        f(local);
                    }
                }
            }
        });
    }
}

use tls::{try_with_local, with_local};

/// Pins the current thread, keeping every pointer loaded under the
/// returned guard valid until the guard drops.
pub fn pin() -> Guard {
    with_local(|local| {
        let n = local.nesting.get();
        local.nesting.set(n + 1);
        if n == 0 {
            // Publish our epoch; loop until the published value matches
            // the global epoch we re-read *after* the SeqCst fence.
            let g = local.home();
            let mut e = g.epoch.load(Ordering::SeqCst);
            loop {
                local.slot.active.store((e << 1) | 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                let now = g.epoch.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                e = now;
            }
            let p = local.pins.get().wrapping_add(1);
            local.pins.set(p);
            if p % PIN_COLLECT_EVERY == 0 {
                g.try_advance();
                g.collect();
            }
        }
    });
    Guard { unprotected: false }
}

/// Returns a guard that performs no pinning.
///
/// # Safety
///
/// Callers must guarantee no other thread can concurrently access the
/// data structure (e.g. inside `Drop` of its unique owner). Deferred
/// destructions on this guard execute immediately.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { unprotected: true };
    &UNPROTECTED
}

/// An RAII guard keeping the current thread pinned.
pub struct Guard {
    unprotected: bool,
}

impl Guard {
    /// Defers destruction of the pointed-to heap allocation until no
    /// pinned thread can still hold the pointer.
    ///
    /// # Safety
    ///
    /// `ptr` must have been created from an `Owned`/`Box` allocation and
    /// must be unreachable to new readers (already unlinked).
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        if ptr.is_null() {
            return;
        }
        unsafe fn drop_box<T>(p: *mut ()) {
            track_free(p);
            drop(Box::from_raw(p as *mut T));
        }
        if self.unprotected {
            track_free(ptr.ptr);
            drop(Box::from_raw(ptr.ptr as *mut T));
            return;
        }
        global().defer(Deferred {
            ptr: ptr.ptr as *mut (),
            call: drop_box::<T>,
        });
    }

    /// Defers a type-erased destructor call on `ptr` until no pinned
    /// thread can still hold it. Unlike [`Guard::defer_destroy`] the
    /// pointee need not be a `Box` allocation — `call` decides how the
    /// memory is returned (e.g. to a slab). On an [`unprotected`] guard
    /// the call executes immediately.
    ///
    /// # Safety
    ///
    /// `ptr` must be unreachable to new readers (already unlinked), and
    /// `call` must be safe to run on it from any thread once the grace
    /// period elapses. The callee is responsible for any allocation
    /// tracking (`defer_destroy` tracks the free itself; this does not).
    pub unsafe fn defer_with(&self, ptr: *mut (), call: unsafe fn(*mut ())) {
        if ptr.is_null() {
            return;
        }
        if self.unprotected {
            call(ptr);
            return;
        }
        global().defer(Deferred { ptr, call });
    }

    /// Nudges the collector: tries to advance the epoch and run ripe
    /// deferred destructions.
    pub fn flush(&self) {
        if self.unprotected {
            return;
        }
        let g = global();
        g.try_advance();
        g.collect();
    }

    /// Unpins and immediately re-pins the thread, letting the epoch
    /// advance past anything this guard was holding back.
    pub fn repin(&mut self) {
        if self.unprotected {
            return;
        }
        with_local(|local| {
            if local.nesting.get() == 1 {
                let g = local.home();
                local.slot.active.store(0, Ordering::SeqCst);
                let mut e = g.epoch.load(Ordering::SeqCst);
                loop {
                    local.slot.active.store((e << 1) | 1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    let now = g.epoch.load(Ordering::SeqCst);
                    if now == e {
                        break;
                    }
                    e = now;
                }
            }
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.unprotected {
            return;
        }
        // try_with: TLS may already be torn down during thread exit.
        try_with_local(|local| {
            let n = local.nesting.get();
            debug_assert!(n > 0, "guard dropped with zero nesting");
            local.nesting.set(n - 1);
            if n == 1 {
                local.slot.active.store(0, Ordering::SeqCst);
            }
        });
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("unprotected", &self.unprotected)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------------

/// Types that can be converted into a raw pointer for storing into an
/// [`Atomic`] (crossbeam's `Pointable`/`Pointer` machinery, reduced).
pub trait Pointer<T> {
    /// Consumes `self`, returning the raw pointer.
    fn into_ptr(self) -> *mut T;

    /// Reconstructs `Self` from a pointer previously produced by
    /// [`Pointer::into_ptr`] on a value of this exact type.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `into_ptr` on this type and must not be
    /// reconstructed twice.
    unsafe fn from_ptr(ptr: *mut T) -> Self;
}

/// An owned heap allocation, destined for an [`Atomic`].
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Owned<T> {
        let ptr = Box::into_raw(Box::new(value));
        track_alloc(ptr);
        Owned { ptr }
    }

    /// Converts into a [`Shared`] tied to `_guard`'s lifetime.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }

    /// Unwraps the owned allocation back into its value.
    pub fn into_box(self) -> Box<T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        unsafe { Box::from_raw(ptr) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let ptr = self.ptr;
        std::mem::forget(self);
        ptr
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Owned { ptr }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        track_free(self.ptr);
        unsafe { drop(Box::from_raw(self.ptr)) };
    }
}

impl<T> From<T> for Owned<T> {
    fn from(value: T) -> Owned<T> {
        Owned::new(value)
    }
}

unsafe impl<T: Send> Send for Owned<T> {}

/// A pointer valid for the lifetime of a [`Guard`].
pub struct Shared<'g, T> {
    ptr: *const T,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Shared<'g, T> {
        Shared {
            ptr: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// True when null.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Converts to a reference, or `None` when null.
    ///
    /// # Safety
    ///
    /// The pointer must be valid under the current guard.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        if !self.ptr.is_null() {
            check_deref(self.ptr);
        }
        self.ptr.as_ref()
    }

    /// Dereferences (must be non-null).
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and valid under the current guard.
    pub unsafe fn deref(&self) -> &'g T {
        check_deref(self.ptr);
        &*self.ptr
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner (nothing else can reach it).
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.ptr.is_null());
        Owned {
            ptr: self.ptr as *mut T,
        }
    }

    /// Reconstructs a `Shared` from a raw pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be null or valid under the current guard.
    pub unsafe fn from_raw(ptr: *const T) -> Shared<'g, T> {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr as *mut T
    }

    unsafe fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

/// Error from a failed [`Atomic::compare_exchange`]: carries the value
/// actually found and gives the proposed value back to the caller.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic held at CAS time.
    pub current: Shared<'g, T>,
    /// The proposed new value, returned unconsumed.
    pub new: P,
}

impl<T, P: Pointer<T>> fmt::Debug for CompareExchangeError<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompareExchangeError(current: {:p})", self.current.ptr)
    }
}

/// An atomic pointer into epoch-managed memory.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null pointer.
    pub fn null() -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Allocates `value` and stores the pointer.
    pub fn new(value: T) -> Atomic<T> {
        let raw = Box::into_raw(Box::new(value));
        track_alloc(raw);
        Atomic {
            ptr: AtomicPtr::new(raw),
        }
    }

    /// Loads the current pointer under `_guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores a new pointer. The previous value is *not* reclaimed.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }

    /// Swaps in a new pointer, returning the previous one.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }

    /// Compare-and-exchange. On failure the proposed value is handed
    /// back in the error so the caller can retry or drop it.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self
            .ptr
            .compare_exchange(current.ptr as *mut T, new_ptr, success, failure)
        {
            Ok(prev) => Ok(Shared {
                ptr: prev,
                _marker: PhantomData,
            }),
            Err(found) => Err(CompareExchangeError {
                current: Shared {
                    ptr: found,
                    _marker: PhantomData,
                },
                // Safety: we still own new_ptr — the CAS did not consume it.
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Atomic<T> {
        Atomic {
            ptr: AtomicPtr::new(owned.into_ptr()),
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as O};

    #[test]
    fn pin_unpin_nests() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
        with_local(|l| assert_eq!(l.nesting.get(), 0));
    }

    #[test]
    fn atomic_load_store_swap() {
        let a = Atomic::new(41usize);
        let g = pin();
        let s = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { *s.deref() }, 41);
        let old = a.swap(Owned::new(42usize), Ordering::AcqRel, &g);
        unsafe { g.defer_destroy(old) };
        let s = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { *s.deref() }, 42);
        let last = a.swap(Shared::null(), Ordering::AcqRel, &g);
        unsafe { g.defer_destroy(last) };
        drop(g);
    }

    #[test]
    fn compare_exchange_returns_new_on_failure() {
        let a = Atomic::new(1usize);
        let g = pin();
        let cur = a.load(Ordering::Acquire, &g);
        // Successful CAS.
        let prev = a
            .compare_exchange(
                cur,
                Owned::new(2usize),
                Ordering::AcqRel,
                Ordering::Acquire,
                &g,
            )
            .expect("cas should succeed");
        unsafe { g.defer_destroy(prev) };
        // Failing CAS: `cur` is stale now; we must get the Owned back.
        let err = a
            .compare_exchange(
                cur,
                Owned::new(3usize),
                Ordering::AcqRel,
                Ordering::Acquire,
                &g,
            )
            .expect_err("cas should fail");
        assert_eq!(unsafe { *err.current.deref() }, 2);
        drop(err.new); // reclaim the rejected allocation normally
        let last = a.swap(Shared::null(), Ordering::AcqRel, &g);
        unsafe { g.defer_destroy(last) };
        drop(g);
    }

    #[test]
    fn deferred_destruction_runs_after_epoch_advance() {
        struct Probe(Arc<StdAtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, O::SeqCst);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        let a = Atomic::new(Probe(drops.clone()));
        {
            let g = pin();
            let old = a.swap(Owned::new(Probe(drops.clone())), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
            // Still pinned: the deferred drop cannot have run yet in a
            // single-threaded test (epoch can't advance past us twice).
            g.flush();
        }
        // Repeated pin/flush cycles drain the garbage once unpinned.
        for _ in 0..8 {
            pin().flush();
        }
        assert_eq!(drops.load(O::SeqCst), 1);
        // Cleanup of the remaining value.
        unsafe {
            let g = unprotected();
            let last = a.swap(Shared::null(), Ordering::AcqRel, g);
            g.defer_destroy(last);
        }
        assert_eq!(drops.load(O::SeqCst), 2);
    }

    #[test]
    fn unprotected_defer_is_immediate() {
        struct Probe(Arc<StdAtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, O::SeqCst);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        unsafe {
            let g = unprotected();
            let owned = Owned::new(Probe(drops.clone()));
            let shared = owned.into_shared(g);
            g.defer_destroy(shared);
        }
        assert_eq!(drops.load(O::SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_never_see_freed_memory() {
        // Writers continuously swap a boxed value; readers pin, load,
        // and read it. Under correct EBR this never touches freed memory
        // (run under TSan/ASan in CI lanes).
        let a = Arc::new(Atomic::new(0usize));
        let stop = Arc::new(StdAtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let a = a.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut v = 1usize;
                    while stop.load(O::Relaxed) == 0 {
                        let g = pin();
                        let old = a.swap(Owned::new(v), Ordering::AcqRel, &g);
                        unsafe { g.defer_destroy(old) };
                        v += 1;
                    }
                });
            }
            for _ in 0..4 {
                let a = a.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while stop.load(O::Relaxed) == 0 {
                        let g = pin();
                        let s = a.load(Ordering::Acquire, &g);
                        if let Some(v) = unsafe { s.as_ref() } {
                            // Reading the value must be safe.
                            std::hint::black_box(*v);
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            stop.store(1, O::SeqCst);
        });
        unsafe {
            let g = unprotected();
            let last = a.swap(Shared::null(), Ordering::AcqRel, g);
            g.defer_destroy(last);
        }
        for _ in 0..8 {
            pin().flush();
        }
    }
}
