//! Offline placeholder for `proptest`.
//!
//! The build environment has no crates.io access, and a faithful
//! proptest implementation is far outside stub scope. The three test
//! targets that depend on the real macro API (`crates/sighash`
//! `properties`, `crates/fs` `memfs_model`, and the workspace-root
//! `equivalence_prop`) are declared with
//! `required-features = ["proptest-tests"]`, so they are not compiled
//! by default and this crate's contents are never referenced.
//! Randomized coverage for the new observability subsystem lives in
//! plain seeded `#[test]`s instead (see `crates/obs/tests/`).
