//! Offline mini-harness implementing the subset of the Criterion API the
//! `dc-bench` benches use: groups, `bench_function`/`bench_with_input`,
//! `BenchmarkId`, warm-up/measurement windows, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for the configured
//! warm-up window, then takes `sample_size` samples, each a timed batch
//! sized so the whole measurement fits the measurement window. The
//! median per-iteration time is reported on stdout. This is
//! deliberately simpler than real Criterion (no outlier analysis, no
//! HTML reports) but produces comparable medians for the large effect
//! sizes these benches measure.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `optimized/8-comp`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Measured median per-iteration nanoseconds, filled by `iter`.
    result_ns: f64,
}

impl Bencher<'_> {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the window elapses, tracking cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter_est = self.config.warm_up_time.as_nanos() as u64 / warm_iters.max(1);
        // Size batches so sample_size batches fill the measurement window.
        let budget_ns = self.config.measurement_time.as_nanos() as u64;
        let samples = self.config.sample_size.max(2) as u64;
        let batch = (budget_ns / samples / per_iter_est.max(1)).clamp(1, 1 << 20);
        let mut medians: Vec<f64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            medians.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        medians.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = medians[medians.len() / 2];
    }
}

#[derive(Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(3),
            sample_size: 100,
        }
    }
}

/// The top-level harness object.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            group_config: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    group_config: Option<Config>,
}

impl BenchmarkGroup<'_> {
    fn config(&self) -> Config {
        self.group_config
            .clone()
            .unwrap_or_else(|| self.criterion.config.clone())
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut c = self.config();
        c.sample_size = n;
        self.group_config = Some(c);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let mut c = self.config();
        c.measurement_time = d;
        self.group_config = Some(c);
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut f: F) {
        let config = self.config();
        let mut b = Bencher {
            config: &config,
            result_ns: 0.0,
        };
        f(&mut b);
        println!("{}/{}: median {:.1} ns/iter", self.name, id, b.result_ns);
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into().id;
        self.run(id, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let id = id.into().id;
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (upstream-compatible).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut g = c.benchmark_group("t");
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
