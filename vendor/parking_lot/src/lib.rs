//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace patches `parking_lot` to this std-backed implementation.
//! Semantics match parking_lot where the workspace relies on them:
//!
//! - `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is ignored, as parking_lot has no poisoning.
//! - Guards release on drop.
//!
//! Only [`Mutex`], [`MutexGuard`], [`RwLock`] and its guards are
//! provided — exactly the names imported anywhere in this repository.
//!
//! With the `dst` feature the backing locks come from the `dst` sync
//! facade instead of `std::sync`: inside a model execution every
//! acquisition becomes a scheduling point of the deterministic
//! scheduler, and outside one the facade passes straight through to
//! std, so enabling the feature does not change behavior of ordinary
//! tests that happen to link it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "dst")]
use dst::sync;
#[cfg(not(feature = "dst"))]
use std::sync;

/// Process-wide count of lock acquisitions (every successful `lock()`,
/// `try_lock()`, `read()`, and `write()` through this shim).
///
/// Exists so the lock-free fastpath tests can assert a code path takes
/// *zero* locks: sample [`lock_acquisitions`], run the path, and assert
/// the delta is zero. The counter is relaxed — it orders nothing and
/// costs one uncontended atomic add per acquisition.
static LOCK_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

/// The process-wide lock-acquisition count (see [`LOCK_ACQUISITIONS`]).
pub fn lock_acquisitions() -> u64 {
    LOCK_ACQUISITIONS.load(Ordering::Relaxed)
}

#[inline]
fn count_acquisition() {
    LOCK_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
}

/// A mutual-exclusion lock (std-backed, poison-transparent).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        count_acquisition();
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => {
                count_acquisition();
                Some(MutexGuard(g))
            }
            Err(sync::TryLockError::Poisoned(e)) => {
                count_acquisition();
                Some(MutexGuard(e.into_inner()))
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock (std-backed, poison-transparent).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        count_acquisition();
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        count_acquisition();
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn acquisitions_are_counted() {
        let before = lock_acquisitions();
        let m = Mutex::new(0);
        let l = RwLock::new(0);
        drop(m.lock());
        drop(m.try_lock());
        drop(l.read());
        drop(l.write());
        assert!(lock_acquisitions() - before >= 4);
    }
}
