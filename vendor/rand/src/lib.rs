//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! deterministic seeded generation via [`rngs::StdRng`] and
//! [`Rng::gen_range`] over half-open integer ranges.
//!
//! The generator is splitmix64 — statistically fine for workload
//! shaping (directory-name selection, mailbox picking), which is the
//! only use in this repository. Sequences are deterministic per seed
//! but not identical to upstream `rand`; every consumer here seeds
//! explicitly and relies only on determinism, not on exact streams.

use std::ops::Range;

/// Types that [`Rng::gen_range`] can sample over a `Range`.
pub trait SampleRange: Copy {
    /// Samples uniformly from `[low, high)` using `next` for raw bits.
    fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift rejection-free mapping; bias is
                // negligible for the small spans used in workloads.
                range.start + ((next() % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Random-number-generator operations (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample(range, &mut f)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }
}
