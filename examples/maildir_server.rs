//! The paper's motivating server workload: a Dovecot-style maildir IMAP
//! store, comparing throughput between the unmodified and optimized
//! directory caches (Figure 10's scenario).
//!
//! The kernel runs on a disk model calibrated so warm-cache metadata
//! reads cost what the paper's ext4 testbed measured (≈284 µs per
//! 1000-entry readdir, Figure 9); on a free in-memory substrate the
//! low-level file system is so cheap that avoiding it buys little — see
//! EXPERIMENTS.md for the calibration discussion.
//!
//! Run with `cargo run --release --example maildir_server`.

use dcache_repro::blockdev::{CachedDisk, DiskConfig, LatencyModel};
use dcache_repro::fs::{FileSystem, MemFs, MemFsConfig};
use dcache_repro::workloads::maildir::MaildirSim;
use dcache_repro::{DcacheConfig, KernelBuilder};
use std::sync::Arc;

fn main() {
    let boxes = 10;
    let msgs = 200;
    println!("maildir store: {boxes} mailboxes x {msgs} messages");
    println!("every mark = rename(2) the message file + re-read the mailbox\n");
    for (name, config) in [
        ("unmodified", DcacheConfig::baseline()),
        ("optimized ", DcacheConfig::optimized()),
    ] {
        let disk = Arc::new(CachedDisk::new(DiskConfig {
            capacity_blocks: 1 << 18,
            latency: LatencyModel::new(50_000, 50_000, true).with_hit_ns(25_000),
            ..Default::default()
        }));
        let memfs = MemFs::mkfs(
            disk,
            MemFsConfig {
                max_inodes: 1 << 18,
                ..Default::default()
            },
        )
        .expect("mkfs");
        let kernel = KernelBuilder::new(config)
            .root_fs(memfs as Arc<dyn FileSystem>)
            .build()
            .expect("kernel");
        let server = kernel.init_process();
        kernel.mkdir(&server, "/var", 0o755).unwrap();
        let mut sim = MaildirSim::provision(&kernel, &server, "/var/mail", boxes, msgs, 7).unwrap();
        // Warm the caches the way a long-running server would.
        for _ in 0..100 {
            sim.mark_one(&kernel, &server).unwrap();
        }
        kernel.reset_stats();
        let rate = sim.run(&kernel, &server, 500).unwrap();
        let stats = &kernel.dcache.stats;
        let cached = stats
            .readdir_cached
            .load(std::sync::atomic::Ordering::Relaxed);
        let fs_calls = stats.readdir_fs.load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "{name}: {rate:>9.0} marks/sec   (listings from cache: {cached}, from fs: {fs_calls})"
        );
    }
    println!(
        "\nThe optimized cache serves every post-mark mailbox re-read from \
         the directory-completeness snapshot (§5.1) instead of calling the \
         low-level file system."
    );
}
