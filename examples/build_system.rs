//! A `make`-style build over a source tree: header search paths generate
//! heavy negative-lookup traffic (the paper reports ~20% negative
//! dentries for `make`, Table 1), and the include-dir probing shows what
//! deep negative dentries and directory completeness buy.
//!
//! Run with `cargo run --release --example build_system`.

use dcache_repro::workloads::apps::make_build;
use dcache_repro::workloads::tree::{build_tree, TreeSpec};
use dcache_repro::{DcacheConfig, KernelBuilder};
use std::sync::atomic::Ordering;

fn main() {
    for (name, config) in [
        ("unmodified", DcacheConfig::baseline()),
        ("optimized ", DcacheConfig::optimized()),
    ] {
        let kernel = KernelBuilder::new(config).build().expect("kernel");
        let shell = kernel.init_process();
        let manifest =
            build_tree(&kernel, &shell, "/project", &TreeSpec::source_like(800)).unwrap();
        // First build: cold compile (creates all the .o files).
        let first = make_build(&kernel, &shell, &manifest, "/project").unwrap();
        // Rebuild: the warm, lookup-bound case make users feel.
        kernel.reset_stats();
        let rebuild = make_build(&kernel, &shell, &manifest, "/project").unwrap();
        let stats = &kernel.dcache.stats;
        let negs = stats.hit_negative.load(Ordering::Relaxed)
            + stats.fast_neg_hits.load(Ordering::Relaxed)
            + stats.complete_neg_avoided.load(Ordering::Relaxed);
        println!(
            "{name}: cold build {:>7.2} ms, rebuild {:>7.2} ms  \
             (objects: {}, cached-negative answers: {negs}, hit rate {:.1}%)",
            first.wall_ns as f64 / 1e6,
            rebuild.wall_ns as f64 / 1e6,
            rebuild.work_items,
            stats.hit_rate() * 100.0,
        );
    }
    println!(
        "\nEvery compilation probes include directories that do not hold \
         the header; the optimized cache answers those misses from \
         negative dentries and complete directories without touching the \
         file system."
    );
}
