//! Mount namespaces, bind mounts, chroot, and per-user credentials — the
//! §4 generalizations working together: each "container" gets a private
//! namespace with its own direct-lookup table, bind-mounted shared data,
//! a procfs, and a chrooted unprivileged process whose prefix checks are
//! memoized per (credential, namespace).
//!
//! Run with `cargo run --example containers`.

use dcache_repro::cred::Cred;
use dcache_repro::fs::{FileSystem, PseudoFs};
use dcache_repro::vfs::MountFlags;
use dcache_repro::{DcacheConfig, KernelBuilder, OpenFlags};
use std::sync::Arc;

fn main() {
    let kernel = KernelBuilder::new(DcacheConfig::optimized())
        .build()
        .expect("kernel");
    let init = kernel.init_process();

    // Host layout: shared read-only data plus two container roots.
    kernel.mkdir(&init, "/data", 0o755).unwrap();
    let fd = kernel
        .open(&init, "/data/model.bin", OpenFlags::create(), 0o644)
        .unwrap();
    kernel.write_fd(&init, fd, b"weights").unwrap();
    kernel.close(&init, fd).unwrap();
    for c in ["/ct1", "/ct2"] {
        kernel.mkdir(&init, c, 0o755).unwrap();
        kernel.mkdir(&init, &format!("{c}/data"), 0o755).unwrap();
        kernel.mkdir(&init, &format!("{c}/proc"), 0o555).unwrap();
        kernel.mkdir(&init, &format!("{c}/home"), 0o777).unwrap();
    }

    // A procfs instance, mounted in BOTH containers (a mount alias, §4.3).
    let proc_fs = PseudoFs::new(0o555);
    proc_fs
        .add_file(proc_fs.root_ino(), "meminfo", 0o444, || {
            b"MemTotal: 65536 kB\n".to_vec()
        })
        .unwrap();
    let proc_dyn: Arc<dyn FileSystem> = proc_fs;
    kernel
        .mount_fs(&init, proc_dyn.clone(), "/ct1/proc", MountFlags::default())
        .unwrap();
    kernel
        .mount_fs(&init, proc_dyn, "/ct2/proc", MountFlags::default())
        .unwrap();
    // Shared data appears in each container via bind mounts.
    kernel.bind_mount(&init, "/data", "/ct1/data").unwrap();
    kernel.bind_mount(&init, "/data", "/ct2/data").unwrap();

    // Launch a "container": unshare the namespace, chroot, drop to an
    // unprivileged user.
    for (i, root) in ["/ct1", "/ct2"].iter().enumerate() {
        let launcher = kernel.spawn(&init);
        kernel.unshare_ns(&launcher).unwrap();
        kernel.chroot(&launcher, root).unwrap();
        let ns = launcher.namespace();
        println!(
            "container {i}: namespace {} ({} mounts)",
            ns.id,
            ns.mount_count()
        );

        // Inside: paths are container-relative.
        let app = kernel.spawn_with_cred(&launcher, Cred::user(1000 + i as u32, 1000));
        let meminfo = kernel.stat(&app, "/proc/meminfo").unwrap();
        let model = kernel.stat(&app, "/data/model.bin").unwrap();
        println!(
            "  /proc/meminfo mode {:o}, /data/model.bin {} bytes",
            meminfo.mode, model.size
        );

        // The app writes in its own home; repeated stats ride the
        // namespace-private fastpath.
        let fd = kernel
            .open(&app, "/home/out.log", OpenFlags::create(), 0o600)
            .unwrap();
        kernel.close(&app, fd).unwrap();
        for _ in 0..5 {
            kernel.stat(&app, "/home/out.log").unwrap();
        }
        // The host path does not exist inside the container.
        assert!(kernel.stat(&app, "/ct1").is_err());
    }

    let hits = kernel
        .dcache
        .stats
        .fast_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    println!("\nfastpath hits across namespaces: {hits}");
    println!("(each namespace owns a private direct-lookup table and PCCs, §4.3)");
}
