//! Quickstart: boot a kernel, do file-system work, inspect the cache.
//!
//! Run with `cargo run --example quickstart`.

use dcache_repro::{DcacheConfig, KernelBuilder, OpenFlags};

fn main() {
    // A kernel with every optimization from the paper enabled; swap in
    // `DcacheConfig::baseline()` for the unmodified-Linux behavior.
    let kernel = KernelBuilder::new(DcacheConfig::optimized())
        .build()
        .expect("kernel");
    let shell = kernel.init_process();

    // Build a little world through the syscall API.
    kernel.mkdir(&shell, "/home", 0o755).unwrap();
    kernel.mkdir(&shell, "/home/alice", 0o755).unwrap();
    let fd = kernel
        .open(&shell, "/home/alice/notes.txt", OpenFlags::create(), 0o644)
        .unwrap();
    kernel
        .write_fd(&shell, fd, b"remember to benchmark the dcache\n")
        .unwrap();
    kernel.close(&shell, fd).unwrap();
    kernel
        .symlink(&shell, "/home/alice/notes.txt", "/home/alice/todo")
        .unwrap();

    // Path-based syscalls: the first lookup walks component-at-a-time
    // and populates the direct-lookup structures; repeats take the
    // single-hash fastpath.
    for round in 1..=3 {
        let attr = kernel.stat(&shell, "/home/alice/notes.txt").unwrap();
        println!(
            "round {round}: notes.txt is {} bytes, mode {:o}",
            attr.size, attr.mode
        );
    }
    let via_link = kernel.stat(&shell, "/home/alice/todo").unwrap();
    println!("via symlink: {} bytes", via_link.size);

    // Negative caching: a repeated miss never reaches the file system.
    for _ in 0..3 {
        assert!(kernel.stat(&shell, "/home/alice/draft.txt").is_err());
    }

    // Relative paths resume hashing from the cwd dentry's stored state.
    kernel.chdir(&shell, "/home/alice").unwrap();
    println!("cwd = {}", kernel.getcwd(&shell));
    assert!(kernel.stat(&shell, "notes.txt").is_ok());

    // What did the cache do?
    println!("\n-- dcache counters --");
    for (name, value) in kernel.dcache.stats.snapshot() {
        if value > 0 {
            println!("{name:>22}: {value}");
        }
    }
    println!("\n-- space --\n{}", kernel.dcache.space_report());
}
