//! Umbrella crate for the directory-cache reproduction workspace.
//!
//! Re-exports the public API of every member crate so the examples and
//! cross-crate integration tests have a single import surface. See
//! `README.md` for the repository tour and `DESIGN.md` for the system
//! inventory.

pub use dc_blockdev as blockdev;
pub use dc_cred as cred;
pub use dc_fault as fault;
pub use dc_fs as fs;
pub use dc_sighash as sighash;
pub use dc_vfs as vfs;
pub use dc_workloads as workloads;
pub use dcache_core as dcache;

pub use dc_vfs::{Kernel, KernelBuilder, OpenFlags, Process};
pub use dcache_core::{DcacheConfig, Dentry, Shrinker, ShrinkerRegistry};
